"""RecommenderServer fault injection: the failure modes a socket front
door must absorb without corrupting the served stream.

Covered here, each against a cheap deterministic stub owner so the
serving machinery — not the model — is what's under test:

- admission control: a full queue gets typed ``overload`` replies and
  the rejected requests are **never executed**;
- client disconnect mid-request: the admitted work still completes
  (mutations hold), the server stays healthy for the next client;
- slow-reader backpressure: an unread connection stalls only itself —
  other clients keep being served — and delivers every reply once the
  reader catches up;
- clean shutdown: stopping mid-window flushes the coalescer and drains
  every admitted request — no reply dropped, nothing served twice;
- remote failures and wire garbage: typed ``error`` replies, counted,
  connection dropped only on unparseable bytes.

Bitwise parity of served results against the in-process path is the wire
conformance suite's job (``test_serve_wire_conformance.py``); here the
stub makes request accounting exact instead.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
import time
from pathlib import Path

import pytest

from repro.datasets.schema import SocialItem
from repro.serve import (
    AsyncRecommenderClient,
    ProtocolError,
    RecommenderClient,
    RecommenderServer,
    ServerError,
    ServerOverloadError,
    ServerThread,
)
from repro.serve.protocol import FrameDecoder, decode_reply, item_to_wire


def make_item(item_id: int) -> SocialItem:
    return SocialItem(
        item_id=item_id, category=1, producer=2, entities=(3,),
        text=f"item {item_id}", timestamp=float(item_id),
    )


class StubRecommender:
    """Deterministic owner with exact request accounting.

    ``served`` records every ``(item_id, k)`` that actually executed —
    the ground truth for "rejected requests never run" and "drained
    requests run exactly once".
    """

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.observed: list[int] = []
        self.updated: list[int] = []
        self.served: list[tuple[int, int]] = []
        self._lock = threading.Lock()

    @staticmethod
    def expected(item_id: int, k: int) -> list[tuple[int, float]]:
        return [(item_id * 100 + rank, float(rank)) for rank in range(k)]

    def recommend(self, item, k=None):
        return self.recommend_batch([item], k)[0]

    def recommend_batch(self, items, k=None):
        if self.delay:
            time.sleep(self.delay)
        depth = 3 if k is None else int(k)
        with self._lock:
            self.served.extend((item.item_id, depth) for item in items)
        return [self.expected(item.item_id, depth) for item in items]

    def observe_item(self, item):
        self.observed.append(item.item_id)

    def update(self, interaction, item=None):
        self.updated.append(interaction.user_id)


def wait_until(predicate, timeout: float = 10.0, what: str = "condition") -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.01)


class TestAdmissionControl:
    def test_overload_is_typed_and_never_executed(self):
        stub = StubRecommender(delay=0.15)
        server = RecommenderServer(stub, coalesce=False, max_pending=2)

        async def flood():
            client = await AsyncRecommenderClient.connect(server.host, server.port)
            try:
                return await asyncio.gather(
                    *[client.recommend(make_item(i), 3) for i in range(10)],
                    return_exceptions=True,
                )
            finally:
                await client.close()

        with ServerThread(server):
            results = asyncio.run(flood())

        oks = [r for r in results if isinstance(r, list)]
        overloads = [r for r in results if isinstance(r, ServerOverloadError)]
        assert len(oks) + len(overloads) == 10
        assert overloads, "flooding past max_pending must shed load"
        assert oks, "admitted requests must still be served"
        assert server.stats.overloads == len(overloads)
        # The shed requests never touched the model: executed work
        # matches the ok replies exactly.
        assert len(stub.served) == len(oks)
        for ranked in oks:
            assert ranked == stub.expected(ranked[0][0] // 100, 3)

    def test_max_pending_validation(self):
        with pytest.raises(ValueError, match="max_pending"):
            RecommenderServer(StubRecommender(), max_pending=0)


class TestDisconnects:
    def test_disconnect_mid_request_work_still_completes(self):
        stub = StubRecommender(delay=0.2)
        server = RecommenderServer(stub, coalesce=False)
        with ServerThread(server) as (host, port):
            # Observe + recommend, then vanish without reading a byte.
            sock = socket.create_connection((host, port))
            from repro.serve.protocol import Request, encode_request

            sock.sendall(encode_request(Request("observe", 0, {"item": item_to_wire(make_item(7))})))
            sock.sendall(encode_request(Request("recommend", 1, {"item": item_to_wire(make_item(8)), "k": 3})))
            sock.close()
            # The admitted work runs to completion: the mutation holds and
            # the recommend executed exactly once, reply or no reply.
            wait_until(lambda: stub.served == [(8, 3)], what="abandoned request to finish")
            assert stub.observed == [7]
            # The server shrugged it off — the next client is served.
            with RecommenderClient(host, port) as healthy:
                assert healthy.recommend(make_item(9), 2) == stub.expected(9, 2)
        assert stub.served == [(8, 3), (9, 2)]

    def test_protocol_garbage_gets_typed_reply_then_drop(self):
        server = RecommenderServer(StubRecommender())
        with ServerThread(server) as (host, port):
            sock = socket.create_connection((host, port), timeout=10)
            bad = json.dumps({"v": 99, "kind": "request", "op": "stats", "id": 1}).encode()
            sock.sendall(struct.pack(">I", len(bad)) + bad)
            decoder = FrameDecoder()
            replies = []
            while not replies:
                data = sock.recv(65536)
                assert data, "server closed without the typed error reply"
                replies.extend(decoder.feed(data))
            reply = decode_reply(replies[0])
            assert reply.status == "error"
            assert "ProtocolError" in reply.error
            assert "version" in reply.error
            # After wire corruption the connection is dropped, not resynced.
            assert sock.recv(65536) == b""
            sock.close()
        assert server.stats.protocol_errors == 1

    def test_torn_frame_on_eof_is_counted(self):
        server = RecommenderServer(StubRecommender())
        with ServerThread(server) as (host, port):
            sock = socket.create_connection((host, port))
            sock.sendall(struct.pack(">I", 100) + b"only-half-a-frame")
            sock.close()
            wait_until(
                lambda: server.stats.protocol_errors == 1,
                what="torn frame to be counted",
            )


class TestBackpressure:
    def test_slow_reader_stalls_only_itself(self):
        stub = StubRecommender()
        server = RecommenderServer(stub, coalesce=False)
        n_requests, k = 40, 1500  # ~40 replies x ~30KB >> socket buffers
        with ServerThread(server) as (host, port):
            slow = RecommenderClient(host, port, timeout=60.0)
            ids = [
                slow._send("recommend", {"item": item_to_wire(make_item(i)), "k": k})
                for i in range(n_requests)
            ]
            # Let replies pile into the kernel buffers until writes stall.
            wait_until(lambda: len(stub.served) == n_requests, what="all requests to execute")
            time.sleep(0.2)
            # A second client is served promptly while the first stalls.
            with RecommenderClient(host, port) as nimble:
                started = time.perf_counter()
                assert nimble.recommend(make_item(777), 2) == stub.expected(777, 2)
                assert time.perf_counter() - started < 5.0
            # The slow reader catches up: every reply arrives, in ids.
            for i, rid in enumerate(ids):
                from repro.serve.protocol import ranked_from_wire

                reply = slow._receive(rid)
                assert reply.status == "ok"
                assert ranked_from_wire(reply.result) == stub.expected(i, k)
            slow.close()
        assert server.stats.replies == n_requests + 1


class TestShutdownDrain:
    def test_stop_flushes_coalescer_no_drop_no_double_serve(self):
        stub = StubRecommender()
        # A huge latency budget: the window only closes because stop()
        # flushes it.
        server = RecommenderServer(stub, coalesce=True, max_batch=64, max_delay=30.0)
        thread = ServerThread(server)
        host, port = thread.start()
        client = RecommenderClient(host, port, timeout=30.0)
        ids = [
            client._send("recommend", {"item": item_to_wire(make_item(i)), "k": 2})
            for i in range(5)
        ]
        # All five are admitted and parked in the open coalescer window.
        wait_until(lambda: server.stats.requests == 5, what="admission of all requests")
        assert stub.served == []  # nothing dispatched yet — window is open
        thread.stop()  # drain: flush the window, run it, write every reply
        replies = [client._receive(rid) for rid in ids]
        client.close()
        assert [r.status for r in replies] == ["ok"] * 5
        # Exactly one execution per request — nothing dropped, nothing
        # served twice — and the drain ran them as the one flushed batch.
        assert sorted(stub.served) == [(i, 2) for i in range(5)]
        assert server.stats.coalesced_batches == 1
        assert server.stats.max_batch_size == 5
        assert server.stats.replies == 5

    def test_stop_is_idempotent_and_double_start_rejected(self):
        thread = ServerThread(RecommenderServer(StubRecommender()))
        with thread:
            with pytest.raises(RuntimeError, match="already started"):
                thread.start()
        thread.stop()  # stopping again is a no-op


class TestErrorsAndOps:
    def test_remote_failure_is_typed_and_survivable(self):
        class Exploding(StubRecommender):
            def recommend_batch(self, items, k=None):
                if any(item.item_id == 13 for item in items):
                    raise ValueError("unlucky item")
                return super().recommend_batch(items, k)

        stub = Exploding()
        server = RecommenderServer(stub, coalesce=False)
        with ServerThread(server) as (host, port):
            with RecommenderClient(host, port) as client:
                with pytest.raises(ServerError, match="unlucky item"):
                    client.recommend(make_item(13), 3)
                # The server survives the failed request.
                assert client.recommend(make_item(14), 3) == stub.expected(14, 3)
        assert server.stats.errors == 1

    def test_coalesced_batch_failure_fails_all_and_server_survives(self):
        class Exploding(StubRecommender):
            def recommend_batch(self, items, k=None):
                if any(item.item_id == 13 for item in items):
                    raise ValueError("poisoned batch")
                return super().recommend_batch(items, k)

        server = RecommenderServer(Exploding(), coalesce=True, max_delay=0.05)

        async def run():
            client = await AsyncRecommenderClient.connect(server.host, server.port)
            try:
                poisoned = await asyncio.gather(
                    *[client.recommend(make_item(i), 2) for i in (12, 13)],
                    return_exceptions=True,
                )
                healthy = await client.recommend(make_item(20), 2)
                return poisoned, healthy
            finally:
                await client.close()

        with ServerThread(server):
            poisoned, healthy = asyncio.run(run())
        # One poisoned member fails the whole coalesced batch (they ran
        # as one model call), each member getting its own error reply...
        assert all(isinstance(r, ServerError) for r in poisoned)
        # ...and the next window serves normally.
        assert healthy == StubRecommender.expected(20, 2)

    def test_snapshot_reload_swaps_owner_atomically(self, tmp_path):
        class Snapshottable(StubRecommender):
            generation = 0

            def save(self, path):
                Path(path).write_text("stub-state")

            @classmethod
            def load(cls, path):
                assert Path(path).read_text() == "stub-state"
                loaded = cls()
                Snapshottable.generation += 1
                loaded.generation = Snapshottable.generation
                return loaded

        original = Snapshottable()
        server = RecommenderServer(original, coalesce=False)
        target = tmp_path / "snap"
        with ServerThread(server) as (host, port):
            with RecommenderClient(host, port) as client:
                result = client.snapshot(target, reload=True)
                assert result == {"path": str(target), "reloaded": True}
                # Served by the reloaded owner, not the original.
                assert client.recommend(make_item(5), 2) == original.expected(5, 2)
        assert server.recommender is not original
        assert server.recommender.generation == 1
        assert server.snapshot_reloads == 1
        assert original.served == []
        assert server.recommender.served == [(5, 2)]

    def test_stats_route_latency_over_the_wire(self):
        stub = StubRecommender()
        server = RecommenderServer(stub)
        with ServerThread(server) as (host, port):
            with RecommenderClient(host, port) as client:
                client.observe(make_item(1))
                client.recommend(make_item(1), 2)
                stats = client.stats()
        assert stats["requests"] == 3
        assert stats["routes"]["observe"]["count"] == 1
        assert stats["routes"]["recommend"]["count"] == 1
        assert stats["routes"]["recommend"]["p95_ms"] >= 0.0
        assert stats["coalescing"]["batches"] == 1

    def test_mixed_k_coalesced_window(self):
        stub = StubRecommender()
        server = RecommenderServer(stub, max_delay=0.05)

        async def run():
            client = await AsyncRecommenderClient.connect(server.host, server.port)
            try:
                return await asyncio.gather(
                    *[client.recommend(make_item(i), k) for i, k in ((1, 2), (2, 5), (3, 2))]
                )
            finally:
                await client.close()

        with ServerThread(server):
            results = asyncio.run(run())
        assert results == [
            stub.expected(1, 2), stub.expected(2, 5), stub.expected(3, 2)
        ]

    def test_port_conflict_surfaces_on_start(self):
        server = RecommenderServer(StubRecommender())
        with ServerThread(server) as (host, port):
            clash = RecommenderServer(StubRecommender(), host=host, port=port)
            with pytest.raises(OSError):
                ServerThread(clash).start()

    def test_client_timeout_on_silent_server(self):
        # A listener that accepts and never replies.
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()
        client = RecommenderClient(host, port, timeout=0.2)
        try:
            with pytest.raises(TimeoutError):
                client.recommend(make_item(1), 2)
        finally:
            client.close()
            listener.close()


class TestObservability:
    """The metrics route, wire-level tracing, and the slow-request log."""

    def test_metrics_route_schema_and_counts(self):
        from repro.obs import MetricsRegistry

        stub = StubRecommender()
        server = RecommenderServer(stub, coalesce=False)
        with ServerThread(server) as (host, port):
            with RecommenderClient(host, port) as client:
                for i in range(3):
                    client.recommend(make_item(i), 2)
                payload = client.metrics()
        assert set(payload) == {"registry", "prometheus", "slow_requests"}
        # The dump must survive the strict schema validator — the CI
        # metrics gate parses it exactly this way.
        registry = MetricsRegistry.from_dict(payload["registry"])
        assert registry.to_dict() == payload["registry"]
        assert registry.counter("server.requests").value >= 3
        assert registry.histogram("server.route_seconds", op="recommend").count == 3
        assert "server_requests" in payload["prometheus"]
        assert payload["slow_requests"] == []

    def test_traced_recommend_ships_span_tree(self):
        from repro.obs import build_tree

        stub = StubRecommender()
        server = RecommenderServer(stub, coalesce=False)
        with ServerThread(server) as (host, port):
            with RecommenderClient(host, port) as client:
                ranked, trace = client.recommend_traced(make_item(7), 3)
                # Tracing never changes what is served.
                assert ranked == client.recommend(make_item(7), 3)
        assert trace is not None
        assert set(trace) == {"trace_id", "spans"}
        names = [entry["name"] for entry in trace["spans"]]
        assert "server.request" in names
        assert "server.execute" in names
        # Exactly one root, everything else hangs off it.
        (root,) = build_tree(trace["spans"])
        assert root["name"] == "server.request"
        assert root["tags"]["op"] == "recommend"
        # Exactly one parentless span — the request root; every other
        # span nests under it.
        orphans = [e for e in trace["spans"] if e["parent_id"] is None]
        assert [e["name"] for e in orphans] == ["server.request"]

    def test_untraced_recommend_carries_no_trace_field(self):
        # The wire conformance suite holds the byte layout; here we hold
        # the reply object: no trace unless asked.
        stub = StubRecommender()
        server = RecommenderServer(stub, coalesce=False)
        with ServerThread(server) as (host, port):
            with socket.create_connection((host, port), timeout=10) as sock:
                from repro.serve.protocol import Request, encode_request

                sock.sendall(encode_request(Request(
                    "recommend", 0, {"item": item_to_wire(make_item(1)), "k": 2}
                )))
                decoder = FrameDecoder()
                messages = []
                while not messages:
                    messages = list(decoder.feed(sock.recv(65536)))
        assert "trace" not in messages[0]

    def test_coalesced_traced_requests_share_batch_spans(self):
        from repro.obs import build_tree

        stub = StubRecommender(delay=0.02)
        server = RecommenderServer(stub, coalesce=True, max_delay=0.05)

        async def run():
            client = await AsyncRecommenderClient.connect(server.host, server.port)
            try:
                return await asyncio.gather(*[
                    client.recommend_traced(make_item(i), 2) for i in range(4)
                ])
            finally:
                await client.close()

        with ServerThread(server):
            outcomes = asyncio.run(run())
        for ranked, trace in outcomes:
            assert ranked == StubRecommender.expected(ranked[0][0] // 100, 2)
            names = [entry["name"] for entry in trace["spans"]]
            assert "server.request" in names
            assert "server.coalesce" in names  # queue wait, per request
            assert "server.batch" in names     # shared model-thread span
            (root,) = build_tree(trace["spans"])
            assert root["name"] == "server.request"

    def test_slow_request_log_captures_span_trees(self):
        stub = StubRecommender(delay=0.05)
        # Threshold zero: every request is "slow" — and the log must
        # capture traces even though the client never asked for one.
        server = RecommenderServer(
            stub, coalesce=False, slow_request_seconds=0.0, slow_request_log_size=2
        )
        with ServerThread(server) as (host, port):
            with RecommenderClient(host, port) as client:
                for i in range(3):
                    client.recommend(make_item(i), 2)
                payload = client.metrics()
        entries = payload["slow_requests"]
        assert len(entries) == 2  # deque bound: only the latest kept
        for entry in entries:
            assert entry["op"] == "recommend"
            assert entry["seconds"] >= 0.05
            assert any(s["name"] == "server.execute" for s in entry["spans"])
        assert server.stats.slow_requests == 3

    def test_slow_threshold_validation(self):
        with pytest.raises(ValueError, match="slow_request_seconds"):
            RecommenderServer(StubRecommender(), slow_request_seconds=-1.0)
