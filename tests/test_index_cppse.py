"""Tests for the CPPse-index: build, KNN exactness, maintenance."""

import numpy as np
import pytest

from repro.core.profiles import ProfileEvent
from repro.datasets.schema import SocialItem


def scan_restricted_to(recommender, item, users, k):
    """Reference ranking: vectorized scan over a user subset."""
    ranked = recommender.matcher.top_k(item, len(recommender.profiles))
    return [(u, s) for u, s in ranked if u in users][:k]


class TestBuild:
    def test_every_consumer_is_blocked_and_vectorized(self, fitted_ssrec_indexed):
        index = fitted_ssrec_indexed.index
        assert set(index.block_of_user) == {
            p.user_id for p in fitted_ssrec_indexed.profiles
        }
        assert set(index.vector_of_user) == set(index.block_of_user)

    def test_trees_cover_block_categories(self, fitted_ssrec_indexed):
        index = fitted_ssrec_indexed.index
        for block in index.blocks:
            for category in block.categories:
                assert (block.block_id, category) in index.trees

    def test_hash_table_routes_universe_pairs(self, fitted_ssrec_indexed):
        index = fitted_ssrec_indexed.index
        block = index.blocks[0]
        universe = index.universes[block.block_id]
        category = next(iter(block.categories))
        entity = universe.entity_ids()[0]
        ptrs = index.hash_table.lookup(category, entity)
        assert block.block_id in ptrs
        assert ptrs[block.block_id] is index.trees[(block.block_id, category)]

    def test_invariants_after_build(self, fitted_ssrec_indexed):
        fitted_ssrec_indexed.index.check_invariants()

    def test_signature_statistics_shape(self, fitted_ssrec_indexed):
        stats = fitted_ssrec_indexed.index.signature_statistics()
        assert stats["n_blocks"] >= 1
        assert stats["n_trees"] >= stats["n_blocks"]
        assert stats["max_entity_num"] > 0


class TestKnnExactness:
    def test_knn_equals_scan_over_probed_users(
        self, fitted_ssrec, fitted_ssrec_indexed, ytube_stream
    ):
        """No false dismissals: the index top-k must equal the exact scan
        top-k over the users the probed trees contain (Lemmas 1-2)."""
        items = ytube_stream.items_in_partition(2)[:25]
        index = fitted_ssrec_indexed.index
        for item in items:
            probed = index.users_in_probed_trees(item)
            if not probed:
                continue
            got = index.knn(item, 10)
            expected = scan_restricted_to(fitted_ssrec, item, probed, 10)
            got_scores = [round(s, 9) for _, s in got]
            exp_scores = [round(s, 9) for _, s in expected]
            assert got_scores == exp_scores, f"item {item.item_id}"
            # Identical users except possibly within exact ties.
            for (gu, gs), (eu, es) in zip(got, expected):
                if gu != eu:
                    assert gs == pytest.approx(es, abs=1e-9)

    def test_knn_k_larger_than_population(self, fitted_ssrec_indexed, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        index = fitted_ssrec_indexed.index
        got = index.knn(item, 10_000)
        assert len(got) == len(index.users_in_probed_trees(item))

    def test_knn_scores_descending(self, fitted_ssrec_indexed, ytube_stream):
        item = ytube_stream.items_in_partition(2)[1]
        scores = [s for _, s in fitted_ssrec_indexed.index.knn(item, 20)]
        assert scores == sorted(scores, reverse=True)

    def test_knn_rejects_negative_k(self, fitted_ssrec_indexed, ytube_small):
        with pytest.raises(ValueError):
            fitted_ssrec_indexed.index.knn(ytube_small.items[0], -1)

    def test_knn_zero_k_is_empty_window(self, fitted_ssrec_indexed, ytube_small):
        """k=0 is an empty recommendation window, not an error."""
        index = fitted_ssrec_indexed.index
        assert index.knn(ytube_small.items[0], 0) == []
        assert index.knn_batch(ytube_small.items[:3], 0) == [[], [], []]
        assert index.knn_batch([], 5) == []

    def test_unindexed_category_returns_empty(self, fitted_ssrec_indexed):
        item = SocialItem(
            item_id=10**9,
            category=0,
            producer=0,
            entities=(10**8,),  # entity no block has seen
            text="",
            timestamp=1.0,
        )
        # Entity unknown anywhere -> no tree located -> empty result.
        index = fitted_ssrec_indexed.index
        if not index.locate_trees(item):
            assert index.knn(item, 5) == []


class TestMaintenance:
    def _record_events(self, rec, user_id, item, times):
        for _ in range(times):
            rec.profiles.record(
                user_id,
                ProfileEvent(
                    category=item.category,
                    producer=item.producer,
                    item_id=item.item_id,
                    entities=item.entities,
                ),
            )

    def test_updates_change_knn_ranking(self, fresh_ssrec_indexed, ytube_stream):
        rec = fresh_ssrec_indexed
        item = ytube_stream.items_in_partition(2)[0]
        baseline = rec.index.knn(item, 5)
        # Make one previously-low user strongly interested in this item.
        probed = rec.index.users_in_probed_trees(item)
        all_ranked = [u for u, _ in rec.index.knn(item, len(probed))]
        target = all_ranked[-1]
        self._record_events(rec, target, item, rec.profiles.window_size * 4)
        rec.index.maintain([target])
        rec.index.check_invariants()
        updated = rec.index.knn(item, 5)
        assert target in [u for u, _ in updated]
        assert updated != baseline

    def test_maintenance_keeps_scan_agreement(self, fresh_ssrec_indexed, ytube_stream):
        rec = fresh_ssrec_indexed
        # Stream one test partition of updates through profiles + maintain.
        partition = ytube_stream.partitions[2][:300]
        item_by_id = {it.item_id: it for it in ytube_stream.dataset.items}
        touched = set()
        for inter in partition:
            item = item_by_id[inter.item_id]
            rec.profiles.record(
                inter.user_id,
                ProfileEvent(
                    category=inter.category,
                    producer=inter.producer,
                    item_id=inter.item_id,
                    entities=item.entities,
                ),
            )
            touched.add(inter.user_id)
        rec.index.maintain(sorted(touched))
        rec.index.check_invariants()
        rec.matcher.sync()
        for item in ytube_stream.items_in_partition(2)[:8]:
            probed = rec.index.users_in_probed_trees(item)
            if not probed:
                continue
            got = [round(s, 9) for _, s in rec.index.knn(item, 8)]
            expected = [
                round(s, 9) for _, s in scan_restricted_to(rec, item, probed, 8)
            ]
            assert got == expected

    def test_new_user_inserted(self, fresh_ssrec_indexed, ytube_small):
        rec = fresh_ssrec_indexed
        new_user = max(p.user_id for p in rec.profiles) + 1
        item = ytube_small.items[0]
        self._record_events(rec, new_user, item, rec.profiles.window_size * 2)
        rec.index.maintain([new_user])
        assert new_user in rec.index.block_of_user
        block_id = rec.index.block_of_user[new_user]
        tree = rec.index.trees[(block_id, item.category)]
        assert tree.find_leaf_entry(new_user) is not None

    def test_new_entity_extends_universe_and_hash(self, fresh_ssrec_indexed, ytube_small):
        rec = fresh_ssrec_indexed
        profile = next(p for p in rec.profiles if p.n_long_events >= 5)
        block_id = rec.index.block_of_user[profile.user_id]
        universe = rec.index.universes[block_id]
        new_entity = max(universe.entity_ids()) + 500
        base = ytube_small.items[0]
        item = SocialItem(
            item_id=10**7,
            category=base.category,
            producer=base.producer,
            entities=(new_entity,),
            text="",
            timestamp=1.0,
        )
        self._record_events(rec, profile.user_id, item, profile.window_size)
        rec.index.maintain([profile.user_id])
        universe = rec.index.universes[rec.index.block_of_user[profile.user_id]]
        assert universe.entity_slot(new_entity) is not None
        for category in rec.index.blocks[rec.index.block_of_user[profile.user_id]].categories:
            assert rec.index.block_of_user[profile.user_id] in rec.index.hash_table.lookup(
                category, new_entity
            )

    def test_overflow_triggers_block_rebuild(self, fresh_ssrec_indexed, ytube_small):
        rec = fresh_ssrec_indexed
        profile = next(p for p in rec.profiles if p.n_long_events >= 5)
        block_id = rec.index.block_of_user[profile.user_id]
        universe = rec.index.universes[block_id]
        headroom = universe.entity_capacity - universe.n_entities
        base = ytube_small.items[0]
        start = 10**6
        # Browse far more new entities than the reserved zone can hold.
        for i in range(headroom + 5):
            item = SocialItem(
                item_id=start + i,
                category=base.category,
                producer=base.producer,
                entities=(start + i,),
                text="",
                timestamp=1.0,
            )
            self._record_events(rec, profile.user_id, item, 1)
        # Force flush of anything left in the window.
        while rec.profiles.get(profile.user_id).window:
            self._record_events(rec, profile.user_id, base, 1)
        rec.index.maintain([profile.user_id])
        rec.index.check_invariants()
        new_universe = rec.index.universes[block_id]
        assert new_universe is not universe  # rebuilt
        assert new_universe.entity_slot(start) is not None

    def test_maintain_unknown_user_is_noop(self, fresh_ssrec_indexed):
        assert fresh_ssrec_indexed.index.maintain([99_999_999]) == 0
