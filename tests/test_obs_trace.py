"""repro.obs tracing, exec hooks, and the opt-in operator profiler.

The disabled path is the contract under test as much as the enabled
one: with no active trace, :func:`repro.obs.span` must return the
shared no-op (no allocation, no recorded state), and
:func:`repro.obs.active_hooks` must answer ``None`` so compiled plans
keep their original tight loop — conformance depends on instrumentation
being purely observational.
"""

from __future__ import annotations

import threading

from repro.obs import (
    PROFILER,
    OperatorProfiler,
    Trace,
    active_hooks,
    build_tree,
    current_trace,
    span,
    trace_context,
    use_trace,
)
from repro.obs.trace import current_parent_id, make_span, new_id


class TestSpans:
    def test_untraced_span_is_shared_noop(self):
        assert current_trace() is None
        first, second = span("anything"), span("else", tag="x")
        assert first is second, "untraced spans must be one shared no-op"
        with first:
            pass  # must be enterable and side-effect free
        assert trace_context() is None

    def test_nesting_records_parent_ids(self):
        trace = Trace()
        with use_trace(trace):
            with span("outer", k="10") as outer:
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        spans = {entry["name"]: entry for entry in trace.spans()}
        assert spans["outer"]["parent_id"] is None
        assert spans["inner"]["parent_id"] == outer.span_id
        assert spans["sibling"]["parent_id"] is None
        assert spans["outer"]["tags"] == {"k": "10"}  # stringified at record
        assert all(entry["duration"] >= 0.0 for entry in spans.values())
        (root_a, root_b) = trace.tree()
        assert root_a["name"] == "outer"
        assert [child["name"] for child in root_a["children"]] == ["inner"]
        assert root_b["name"] == "sibling"

    def test_use_trace_is_reentrant(self):
        outer_trace, inner_trace = Trace(), Trace()
        with use_trace(outer_trace, parent_id="p-outer"):
            assert current_parent_id() == "p-outer"
            with use_trace(inner_trace):
                assert current_trace() is inner_trace
                assert current_parent_id() is None
            assert current_trace() is outer_trace
            assert current_parent_id() == "p-outer"
        assert current_trace() is None

    def test_trace_context_ships_ids_across_boundaries(self):
        trace = Trace("feedface00000000")
        with use_trace(trace):
            with span("root") as root:
                context = trace_context()
        assert context == {"trace_id": "feedface00000000", "parent_id": root.span_id}

    def test_trace_is_thread_local_and_thread_safe(self):
        trace = Trace()
        seen_in_thread = []

        def worker() -> None:
            # A fresh thread starts untraced...
            seen_in_thread.append(current_trace())
            # ...until the fan-out explicitly re-installs the trace.
            with use_trace(trace, parent_id="fan-out"):
                for index in range(50):
                    with span("worker.op", index=index):
                        pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen_in_thread == [None] * 4
        assert len(trace) == 200
        assert all(s["parent_id"] == "fan-out" for s in trace.spans())

    def test_build_tree_surfaces_orphans_as_roots(self):
        spans = [
            make_span("child", parent_id="never-shipped", start=2.0, duration=0.1),
            make_span("root", parent_id=None, start=1.0, duration=0.5),
        ]
        roots = build_tree(spans)
        assert [root["name"] for root in roots] == ["root", "child"]

    def test_grafted_spans_sort_by_start(self):
        trace = Trace()
        trace.add(make_span("late", parent_id=None, start=5.0, duration=0.1))
        trace.extend([make_span("early", parent_id=None, start=1.0, duration=0.1)])
        assert trace.span_names() == ["early", "late"]
        assert trace.to_dict() == {"trace_id": trace.trace_id, "spans": trace.spans()}

    def test_new_id_shape(self):
        ids = {new_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)


class TestHooks:
    def test_disabled_path_answers_none(self):
        # No trace, profiler off (the default environment): the compile
        # seam must see None and keep the original operator loop.
        assert current_trace() is None
        assert not PROFILER.enabled
        assert active_hooks() is None

    def test_tracing_activates_operator_spans(self):
        trace = Trace()
        with use_trace(trace):
            hooks = active_hooks()
            assert hooks is not None
            with hooks.operator("scan-item", "ScoreOp"):
                pass
        (entry,) = trace.spans()
        assert entry["name"] == "exec.ScoreOp"
        assert entry["tags"]["plan"] == "scan-item"


class TestProfiler:
    def test_sampling_and_collapsed_output(self, tmp_path):
        profiler = OperatorProfiler()
        profiler.enabled = True  # sample() directly; enable() would start tracemalloc
        profiler.sample(("repro", "scan-item", "ScoreOp"), 0.25, alloc_bytes=1024)
        profiler.sample(("repro", "scan-item", "ScoreOp"), 0.75, alloc_bytes=1024)
        profiler.sample(("repro", "scan-item", "TopKOp"), 1e-9)
        assert profiler.n_stacks == 2
        wall = profiler.collapsed()
        assert "repro;scan-item;ScoreOp 1000000" in wall  # 1.0s in µs
        assert "repro;scan-item;TopKOp 1" in wall  # sub-µs floors at 1
        assert profiler.collapsed_alloc() == "repro;scan-item;ScoreOp 2048\n"
        paths = profiler.dump(tmp_path)
        assert [p.name.split("-")[0] for p in paths] == ["repro", "repro"]
        assert paths[0].read_text() == wall
        profiler.clear()
        assert profiler.n_stacks == 0
        assert profiler.collapsed() == ""
