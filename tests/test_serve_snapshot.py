"""Snapshot persistence: save -> load -> identical recommendations.

Round-trip exactness is asserted on the ``(user_id, score)`` lists with
``==`` — a warm-started server must be indistinguishable from the live
one, including after mid-stream updates and index maintenance.
"""

import json

import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.serve import (
    SNAPSHOT_FORMAT_VERSION,
    ShardedRecommender,
    SnapshotError,
    read_manifest,
    save_snapshot,
)


def _fresh(ytube_small, ytube_stream, use_index, **kwargs):
    rec = SsRecRecommender(config=SsRecConfig(**kwargs), use_index=use_index, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec


def _stream_some(rec, ytube_small, ytube_stream, n=30):
    """Push updates + observed items so caches/index state are non-trivial."""
    for inter in ytube_stream.partitions[2][:n]:
        rec.update(inter, ytube_small.item(inter.item_id))
    for item in ytube_stream.items_in_partition(2)[:5]:
        rec.observe_item(item)


class TestRecommenderRoundTrip:
    @pytest.mark.parametrize("use_index", [False, True])
    def test_identical_after_reload(
        self, ytube_small, ytube_stream, tmp_path, use_index
    ):
        rec = _fresh(ytube_small, ytube_stream, use_index, maintenance_interval=7)
        _stream_some(rec, ytube_small, ytube_stream)
        rec.save(tmp_path / "snap")
        reloaded = SsRecRecommender.load(tmp_path / "snap")
        items = ytube_stream.items_in_partition(2)[:12]
        assert [reloaded.recommend(it, 7) for it in items] == [
            rec.recommend(it, 7) for it in items
        ]
        assert reloaded.recommend_batch(items, 7) == rec.recommend_batch(items, 7)

    def test_reloaded_recommender_keeps_streaming(
        self, ytube_small, ytube_stream, tmp_path
    ):
        rec = _fresh(ytube_small, ytube_stream, True)
        rec.save(tmp_path / "snap")
        reloaded = SsRecRecommender.load(tmp_path / "snap")
        # Twin streams stay in lockstep after the warm start.
        for inter in ytube_stream.partitions[2][:20]:
            payload = ytube_small.item(inter.item_id)
            rec.update(inter, payload)
            reloaded.update(inter, payload)
        for item in ytube_stream.items_in_partition(2)[:6]:
            rec.observe_item(item)
            reloaded.observe_item(item)
            assert reloaded.recommend(item, 5) == rec.recommend(item, 5)

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises((ValueError, RuntimeError)):
            SsRecRecommender().save(tmp_path / "snap")


class TestShardedRoundTrip:
    def test_identical_after_reload(self, ytube_small, ytube_stream, tmp_path):
        trained = _fresh(ytube_small, ytube_stream, False, maintenance_interval=7)
        service = ShardedRecommender.from_trained(
            trained, n_shards=3, strategy="block", use_index=True
        )
        _stream_some(service, ytube_small, ytube_stream)
        service.save(tmp_path / "snap")
        reloaded = ShardedRecommender.load(tmp_path / "snap")
        assert reloaded.plan.assignments == service.plan.assignments
        assert reloaded.n_shards == service.n_shards
        items = ytube_stream.items_in_partition(2)[:12]
        assert [reloaded.recommend(it, 7) for it in items] == [
            service.recommend(it, 7) for it in items
        ]
        assert reloaded.recommend_batch(items, 7) == service.recommend_batch(items, 7)

    def test_ssrec_snapshot_shards_on_load(self, ytube_small, ytube_stream, tmp_path):
        rec = _fresh(ytube_small, ytube_stream, False, n_shards=2)
        rec.save(tmp_path / "snap")
        service = ShardedRecommender.load(tmp_path / "snap")
        assert service.n_shards == 2
        items = ytube_stream.items_in_partition(2)[:8]
        assert [service.recommend(it, 5) for it in items] == [
            rec.recommend(it, 5) for it in items
        ]

    def test_load_overrides_workers(self, ytube_small, ytube_stream, tmp_path):
        trained = _fresh(ytube_small, ytube_stream, False)
        service = ShardedRecommender.from_trained(trained, n_shards=2)
        service.save(tmp_path / "snap")
        reloaded = ShardedRecommender.load(tmp_path / "snap", workers=4)
        assert reloaded.workers == 4


class TestManifest:
    def test_manifest_contents(self, ytube_small, ytube_stream, tmp_path):
        rec = _fresh(ytube_small, ytube_stream, True)
        save_snapshot(rec, tmp_path / "snap")
        manifest = read_manifest(tmp_path / "snap")
        assert manifest["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert manifest["kind"] == "ssrec"
        assert manifest["use_index"] is True
        assert manifest["n_users"] == len(rec.profiles)
        assert SsRecConfig.from_dict(manifest["config"]) == rec.config

    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(SnapshotError, match="manifest"):
            read_manifest(tmp_path / "nowhere")

    def test_unsupported_version(self, ytube_small, ytube_stream, tmp_path):
        rec = _fresh(ytube_small, ytube_stream, False)
        save_snapshot(rec, tmp_path / "snap")
        manifest_path = tmp_path / "snap" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format"):
            SsRecRecommender.load(tmp_path / "snap")

    def test_corrupt_payload_detected(self, ytube_small, ytube_stream, tmp_path):
        rec = _fresh(ytube_small, ytube_stream, False)
        save_snapshot(rec, tmp_path / "snap")
        payload = tmp_path / "snap" / "state.pkl"
        payload.write_bytes(payload.read_bytes() + b"tamper")
        with pytest.raises(SnapshotError, match="checksum"):
            SsRecRecommender.load(tmp_path / "snap")


class TestFailurePaths:
    """Corruption must raise the one typed error, never partial state."""

    @pytest.fixture()
    def snap(self, ytube_small, ytube_stream, tmp_path):
        rec = _fresh(ytube_small, ytube_stream, False)
        save_snapshot(rec, tmp_path / "snap")
        return tmp_path / "snap"

    def test_truncated_payload_with_matching_checksum(self, snap):
        """A pickle truncated *before* the manifest was written carries a
        valid checksum of the truncated bytes — deserialization itself
        must still fail with the typed error, not EOFError garbage."""
        import hashlib

        payload = snap / "state.pkl"
        truncated = payload.read_bytes()[: payload.stat().st_size // 2]
        payload.write_bytes(truncated)
        manifest = json.loads((snap / "manifest.json").read_text())
        manifest["payload_sha256"] = hashlib.sha256(truncated).hexdigest()
        (snap / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="deserialize"):
            SsRecRecommender.load(snap)

    def test_missing_payload_file(self, snap):
        (snap / "state.pkl").unlink()
        with pytest.raises(SnapshotError, match="payload missing"):
            SsRecRecommender.load(snap)

    def test_malformed_manifest_json(self, snap):
        (snap / "manifest.json").write_text("{not json")
        with pytest.raises(SnapshotError, match="unreadable"):
            read_manifest(snap)

    def test_non_object_manifest(self, snap):
        (snap / "manifest.json").write_text("[1, 2, 3]")
        with pytest.raises(SnapshotError, match="not an object"):
            read_manifest(snap)

    def test_manifest_missing_required_keys(self, snap):
        manifest = json.loads((snap / "manifest.json").read_text())
        del manifest["payload"], manifest["payload_sha256"]
        (snap / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="payload, payload_sha256"):
            SsRecRecommender.load(snap)

    def test_sharded_load_fails_typed_too(self, snap):
        (snap / "state.pkl").write_bytes(b"\x80\x05garbage")
        manifest = json.loads((snap / "manifest.json").read_text())
        import hashlib

        manifest["payload_sha256"] = hashlib.sha256(b"\x80\x05garbage").hexdigest()
        (snap / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="deserialize"):
            ShardedRecommender.load(snap)


class TestConfigSerialization:
    def test_round_trip(self):
        cfg = SsRecConfig(lambda_s=0.3, n_shards=4, shard_strategy="hash")
        assert SsRecConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_is_json_safe(self):
        json.dumps(SsRecConfig().to_dict())

    def test_unknown_keys_rejected(self):
        data = SsRecConfig().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ValueError, match="warp_factor"):
            SsRecConfig.from_dict(data)

    def test_invalid_values_still_validated(self):
        data = SsRecConfig().to_dict()
        data["window_size"] = 0
        with pytest.raises(ValueError, match="window_size"):
            SsRecConfig.from_dict(data)
