"""repro.obs.metrics: the one percentile implementation, mergeable
histograms, and the registry's dump/merge/exposition contract.

The load-bearing claims:

- :func:`exact_percentile` is **bit-identical** to ``numpy.percentile``'s
  default linear interpolation — TimingStats, the stream engine and the
  eval harness all migrated onto it, so their reported summaries must
  not move by one ulp;
- histogram merge is closed under the fixed bounds (the property suite
  additionally holds it associative/commutative), and quantiles stay
  clamped to the observed range;
- ``to_dict``/``from_dict`` round-trip exactly and reject malformed
  dumps loudly — the CI metrics-route schema gate is this validator.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.obs import (
    LatencyHistogram,
    MetricsRegistry,
    ObsSchemaError,
    exact_percentile,
)
from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, geometric_bounds


class TestExactPercentile:
    def test_bit_identical_to_numpy(self):
        rng = random.Random(29)
        for trial in range(200):
            n = rng.randint(1, 40)
            values = [rng.uniform(-1e3, 1e3) for _ in range(n)]
            q = rng.uniform(0.0, 100.0)
            assert exact_percentile(values, q) == float(np.percentile(values, q)), (
                f"trial {trial}: n={n} q={q}"
            )

    def test_edge_quantiles_and_singletons(self):
        assert exact_percentile([], 50) == 0.0
        assert exact_percentile([7.0], 99) == 7.0
        values = [3.0, 1.0, 2.0]
        assert exact_percentile(values, 0) == 1.0
        assert exact_percentile(values, 100) == 3.0
        assert exact_percentile(values, 50) == 2.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="percentile"):
            exact_percentile([1.0], 101)


class TestLatencyHistogram:
    def test_record_and_summary(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 5, 10, 100):
            hist.record(ms / 1000.0)
        assert hist.count == 5
        assert hist.min == 0.001
        assert hist.max == 0.1
        assert hist.sum == pytest.approx(0.118)
        summary = hist.summary_ms()
        assert summary["mean_ms"] == pytest.approx(hist.mean * 1000.0)
        # Quantiles are clamped to the observed range and monotone.
        quantiles = [hist.quantile(q) for q in (0, 25, 50, 75, 95, 100)]
        assert quantiles == sorted(quantiles)
        assert all(hist.min <= value <= hist.max for value in quantiles)

    def test_batch_amortized_record(self):
        # record(seconds, n) is the batch path: n items at the per-item
        # wall clock in one call.
        loop = LatencyHistogram()
        for _ in range(32):
            loop.record(0.004)
        batched = LatencyHistogram()
        batched.record(0.004, n=32)
        assert batched.counts == loop.counts
        assert batched.count == loop.count
        assert (batched.min, batched.max) == (loop.min, loop.max)
        # One multiply vs 32 adds: equal up to float addition order.
        assert batched.sum == pytest.approx(loop.sum)
        batched.record(0.004, n=0)  # no-op, not an error
        assert batched.count == 32

    def test_empty_histogram_is_inert(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.quantile(95) == 0.0
        assert hist.summary_ms() == {
            "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
        }

    def test_merge_requires_equal_bounds(self):
        left = LatencyHistogram()
        right = LatencyHistogram(geometric_bounds(per_decade=2))
        with pytest.raises(ValueError, match="bounds"):
            left.merge(right)

    def test_merge_equals_pooled_recording(self):
        rng = random.Random(31)
        samples_a = [rng.uniform(1e-5, 5.0) for _ in range(200)]
        samples_b = [rng.uniform(1e-5, 5.0) for _ in range(150)]
        pooled = LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for value in samples_a:
            pooled.record(value)
            left.record(value)
        for value in samples_b:
            pooled.record(value)
            right.record(value)
        merged = left.merge(right)
        assert merged.counts == pooled.counts
        assert merged.count == pooled.count
        assert (merged.min, merged.max) == (pooled.min, pooled.max)
        # Bucket counts are exact; the running sum differs only by float
        # addition order.
        assert merged.sum == pytest.approx(pooled.sum)

    def test_serialization_round_trip(self):
        hist = LatencyHistogram()
        for value in (0.0001, 0.003, 0.02, 1.5):
            hist.record(value)
        restored = LatencyHistogram.from_dict(hist.to_dict())
        assert restored.to_dict() == hist.to_dict()
        assert restored.quantile(95) == hist.quantile(95)

    @pytest.mark.parametrize("mutation", [
        lambda d: d.pop("bounds"),
        lambda d: d.update(counts=d["counts"][:-1]),
        lambda d: d.update(counts=[-1] + d["counts"][1:]),
        lambda d: d.update(count=d["count"] + 1),
        lambda d: d.update(sum="not-a-number"),
        lambda d: d.update(min=None),
    ])
    def test_malformed_dump_rejected(self, mutation):
        hist = LatencyHistogram()
        hist.record(0.01)
        data = hist.to_dict()
        mutation(data)
        with pytest.raises(ObsSchemaError):
            LatencyHistogram.from_dict(data)

    def test_default_bounds_are_shared_and_increasing(self):
        assert LatencyHistogram().bounds == DEFAULT_LATENCY_BOUNDS
        assert list(DEFAULT_LATENCY_BOUNDS) == sorted(set(DEFAULT_LATENCY_BOUNDS))
        assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-6)
        assert math.isclose(DEFAULT_LATENCY_BOUNDS[-1], 100.0, rel_tol=1e-9)


class TestMetricsRegistry:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("server.requests").inc(5)
        registry.counter("shard.queries", shard="0").inc(3)
        registry.counter("shard.queries", shard="1").inc(4)
        registry.gauge("shard.users", shard="0").set(12.0)
        registry.histogram("server.route_seconds", op="recommend").record(0.002)
        return registry

    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        first = registry.counter("a.b", x="1")
        first.inc()
        assert registry.counter("a.b", x="1") is first
        # Different labels are a different series.
        assert registry.counter("a.b", x="2") is not first
        assert len(registry) == 2

    def test_merge_sums_counters_and_merges_histograms(self):
        left, right = self.make_registry(), self.make_registry()
        right.gauge("shard.users", shard="0").set(99.0)
        left.merge(right)
        assert left.counter("server.requests").value == 10
        assert left.counter("shard.queries", shard="1").value == 8
        # Gauges are last-writer-wins.
        assert left.gauge("shard.users", shard="0").value == 99.0
        assert left.histogram("server.route_seconds", op="recommend").count == 2

    def test_dump_round_trip(self):
        registry = self.make_registry()
        dump = registry.to_dict()
        assert MetricsRegistry.from_dict(dump).to_dict() == dump

    @pytest.mark.parametrize("dump", [
        "not-an-object",
        {"counters": "nope"},
        {"counters": [{"name": "", "value": 1}]},
        {"counters": [{"name": "x", "value": -1}]},
        {"counters": [{"name": "x", "value": 1, "labels": {"a": 2}}]},
        {"gauges": [{"name": "x", "value": float("nan")}]},
        {"histograms": [{"name": "x"}]},
    ])
    def test_malformed_dump_rejected(self, dump):
        with pytest.raises(ObsSchemaError):
            MetricsRegistry.from_dict(dump)

    def test_prometheus_exposition(self):
        text = self.make_registry().to_prometheus()
        assert "# TYPE server_requests counter" in text
        assert 'shard_queries{shard="0"} 3' in text
        assert "# TYPE shard_users gauge" in text
        assert "# TYPE server_route_seconds histogram" in text
        # The histogram emits cumulative buckets, the +Inf catch-all,
        # and exact sum/count.
        assert 'le="+Inf"' in text
        assert 'server_route_seconds_count{op="recommend"} 1' in text
        # Dotted names are sanitized: no raw dots survive in metric names.
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                assert "." not in line.split()[2]
