"""Tests for evaluation metrics."""

import pytest

from repro.eval.metrics import (
    PrecisionAccumulator,
    TimingStats,
    intra_list_distance,
    precision_at_k,
    prediction_accuracy,
)


class TestPrecisionAtK:
    def test_all_hits(self):
        assert precision_at_k([1, 2, 3], {1, 2, 3}, 3) == 1.0

    def test_partial_hits(self):
        assert precision_at_k([1, 2, 3, 4], {2, 4}, 4) == 0.5

    def test_truncates_to_k(self):
        assert precision_at_k([9, 1], {1}, 1) == 0.0

    def test_empty_recommendation(self):
        assert precision_at_k([], {1}, 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], {1}, 0)


class TestPrecisionAccumulator:
    def test_matches_paper_definition(self):
        acc = PrecisionAccumulator(ks=(2,))
        acc.add([1, 2], {1})       # 1 hit
        acc.add([3, 4], {3, 4})    # 2 hits
        # P@2 = (1 + 2) / (2 items * 2) = 0.75
        assert acc.precision()[2] == pytest.approx(0.75)

    def test_multiple_cutoffs(self):
        acc = PrecisionAccumulator(ks=(1, 3))
        acc.add([5, 6, 7], {6, 7})
        assert acc.precision()[1] == 0.0
        assert acc.precision()[3] == pytest.approx(2 / 3)

    def test_empty_accumulator_zero(self):
        assert PrecisionAccumulator(ks=(5,)).precision() == {5: 0.0}

    def test_merge(self):
        a, b = PrecisionAccumulator(ks=(2,)), PrecisionAccumulator(ks=(2,))
        a.add([1, 2], {1})
        b.add([1, 2], {1, 2})
        a.merge(b)
        assert a.n_items == 2
        assert a.precision()[2] == pytest.approx(0.75)

    def test_merge_mismatched_ks_rejected(self):
        with pytest.raises(ValueError):
            PrecisionAccumulator(ks=(2,)).merge(PrecisionAccumulator(ks=(3,)))

    def test_invalid_ks_rejected(self):
        with pytest.raises(ValueError):
            PrecisionAccumulator(ks=())
        with pytest.raises(ValueError):
            PrecisionAccumulator(ks=(0,))


class TestPredictionAccuracy:
    def test_basic(self):
        assert prediction_accuracy([1, 2, 3], [1, 0, 3]) == pytest.approx(2 / 3)

    def test_empty(self):
        assert prediction_accuracy([], []) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            prediction_accuracy([1], [1, 2])


class TestIntraListDistance:
    def test_identical_items_zero_diversity(self):
        assert intra_list_distance([(1, 2), (1, 2)]) == 0.0

    def test_disjoint_items_full_diversity(self):
        assert intra_list_distance([(1,), (2,)]) == 1.0

    def test_single_item_zero(self):
        assert intra_list_distance([(1, 2)]) == 0.0

    def test_partial_overlap(self):
        # Jaccard distance of {1,2} vs {2,3} = 1 - 1/3.
        assert intra_list_distance([(1, 2), (2, 3)]) == pytest.approx(2 / 3)


class TestTimingStats:
    def test_mean_and_total(self):
        stats = TimingStats()
        for v in (0.1, 0.2, 0.3):
            stats.record(v)
        assert stats.n == 3
        assert stats.total == pytest.approx(0.6)
        assert stats.mean == pytest.approx(0.2)

    def test_percentile(self):
        stats = TimingStats(samples=[float(i) for i in range(101)])
        assert stats.percentile(50) == pytest.approx(50.0)

    def test_empty_safe(self):
        stats = TimingStats()
        assert stats.mean == 0.0 and stats.percentile(99) == 0.0

    def test_merge(self):
        a, b = TimingStats([1.0]), TimingStats([3.0])
        a.merge(b)
        assert a.mean == pytest.approx(2.0)

    def test_percentile_properties(self):
        stats = TimingStats(samples=[float(i) for i in range(101)])
        assert stats.p50 == pytest.approx(50.0)
        assert stats.p95 == pytest.approx(95.0)
        assert stats.p99 == pytest.approx(99.0)

    def test_percentile_properties_empty(self):
        stats = TimingStats()
        assert stats.p50 == stats.p95 == stats.p99 == 0.0

    def test_summary_ms(self):
        stats = TimingStats(samples=[0.001, 0.003])
        summary = stats.summary_ms()
        assert summary["mean_ms"] == pytest.approx(2.0)
        assert set(summary) == {"mean_ms", "p50_ms", "p95_ms", "p99_ms"}
