"""Scenario generator: determinism, catalog invariants, stream integrity."""

import numpy as np
import pytest

from repro.sim import SCENARIOS, ScenarioGenerator


@pytest.fixture(scope="module")
def generator(ytube_small):
    return ScenarioGenerator(base=ytube_small, seed=11, max_events=240)


@pytest.fixture(scope="module")
def catalog(generator):
    """Every scenario, generated once for the whole module."""
    return {name: generator.generate(name) for name in SCENARIOS}


def _event_key(event):
    return (event.kind, event.timestamp, event.payload)


def _unperturbed_events(generator, scenario):
    """Reconstruct the pre-perturbation serving stream of ``scenario``.

    The split and merge are deterministic functions of the synthesized
    dataset (``scenario.dataset``), so the unperturbed stream can be
    rebuilt without replaying the generator's random draws.
    """
    syn = scenario.dataset
    ordered = sorted(syn.interactions, key=lambda i: (i.timestamp, i.item_id, i.user_id))
    cut = max(2, int(len(ordered) * generator.train_fraction))
    cutoff = ordered[cut - 1].timestamp
    serve_items = [it for it in syn.items if it.timestamp > cutoff]
    return ScenarioGenerator._merge(serve_items, ordered[cut:])[: generator.max_events]


class TestDeterminism:
    def test_same_seed_same_stream(self, ytube_small):
        a = ScenarioGenerator(base=ytube_small, seed=3, max_events=120)
        b = ScenarioGenerator(base=ytube_small, seed=3, max_events=120)
        left = a.generate("duplicate_out_of_order")
        right = b.generate("duplicate_out_of_order")
        assert [_event_key(e) for e in left.events] == [
            _event_key(e) for e in right.events
        ]
        assert left.train_interactions == right.train_interactions

    def test_scenarios_independent_of_generation_order(self, ytube_small):
        """Each scenario's stream depends only on (seed, name)."""
        a = ScenarioGenerator(base=ytube_small, seed=3, max_events=120)
        first = a.generate("abrupt_drift")
        b = ScenarioGenerator(base=ytube_small, seed=3, max_events=120)
        b.generate("bursty_uploads")  # interleave another generation
        second = b.generate("abrupt_drift")
        assert [_event_key(e) for e in first.events] == [
            _event_key(e) for e in second.events
        ]

    def test_different_seeds_differ(self, ytube_small):
        a = ScenarioGenerator(base=ytube_small, seed=3, max_events=120).generate("baseline")
        b = ScenarioGenerator(base=ytube_small, seed=4, max_events=120).generate("baseline")
        assert [_event_key(e) for e in a.events] != [_event_key(e) for e in b.events]

    def test_unknown_scenario_rejected(self, generator):
        with pytest.raises(ValueError, match="unknown scenario"):
            generator.generate("meteor_strike")


class TestStreamIntegrity:
    def test_every_scenario_has_both_event_kinds(self, catalog):
        for name, scenario in catalog.items():
            summary = scenario.summary()
            assert summary["n_uploads"] > 0, name
            assert summary["n_interactions"] > 0, name
            assert summary["n_events"] == len(scenario.events), name

    def test_max_events_honoured_after_perturbation(self, generator, catalog):
        """Event-adding scenarios (duplicates, injected uploads) must
        still respect the configured stream-length cap."""
        for name, scenario in catalog.items():
            assert len(scenario.events) <= generator.max_events, name

    def test_interactions_resolve_to_consistent_items(self, catalog):
        """Every interaction's denormalized fields match its item payload —
        the invariant the profile/index layers depend on."""
        for name, scenario in catalog.items():
            for inter in scenario.interactions():
                item = scenario.item_payload(inter)
                assert item is not None, (name, inter.item_id)
                assert item.item_id == inter.item_id
                assert item.category == inter.category
                assert item.producer == inter.producer

    def test_upload_ids_unique_except_redelivery(self, catalog):
        """Uploads are delivered exactly once — except in the scenarios
        whose at-least-once transport redelivers uploads on purpose:
        duplicate/out-of-order (the cached plans' bench surface) and the
        mutated-retry / cross-producer-repost pair (the dedup stage's,
        which mix exact redeliveries with fresh-id near-duplicates)."""
        redelivering = {
            "duplicate_out_of_order", "mutated_retry", "cross_producer_repost",
        }
        for name, scenario in catalog.items():
            ids = [it.item_id for it in scenario.uploads()]
            if name in redelivering:
                assert len(ids) > len(set(ids)), name  # redelivery happened
            else:
                assert len(ids) == len(set(ids)), name

    def test_training_slice_precedes_serving(self, catalog):
        for name, scenario in catalog.items():
            cutoff = scenario.train_interactions[-1].timestamp
            assert all(
                it.timestamp > cutoff for it in scenario.uploads()
            ), name


class TestScenarioShapes:
    def test_baseline_is_clean(self, catalog):
        summary = catalog["baseline"].summary()
        assert summary["n_new_users"] == 0
        assert summary["n_new_items"] == 0
        assert summary["n_new_producers"] == 0

    def test_bursty_uploads_clump(self, catalog):
        events = catalog["bursty_uploads"].events
        run = best = 0
        for event in events:
            run = run + 1 if event.kind == "upload" else 0
            best = max(best, run)
        n_uploads = catalog["bursty_uploads"].summary()["n_uploads"]
        assert best >= min(12, n_uploads)

    def test_cold_start_users_are_unseen(self, catalog):
        scenario = catalog["cold_start_users"]
        known = set(scenario.dataset.consumer_ids) | set(scenario.dataset.producer_ids)
        new_users = {i.user_id for i in scenario.interactions()} - known
        assert new_users
        assert not any(
            i.user_id in new_users for i in scenario.train_interactions
        )

    def test_cold_start_producers_upload_mid_stream(self, catalog):
        scenario = catalog["cold_start_producers"]
        known = set(scenario.dataset.producer_ids)
        novel_uploads = [it for it in scenario.uploads() if it.producer not in known]
        assert novel_uploads
        assert scenario.extra_items
        assert {it.item_id for it in novel_uploads} == set(scenario.extra_items)
        # And users actually interact with the novel items.
        novel_ids = set(scenario.extra_items)
        assert any(i.item_id in novel_ids for i in scenario.interactions())

    def test_abrupt_drift_rotates_categories(self, generator, catalog):
        """Post-midpoint interactions are re-pointed into the rotated
        category block; pre-midpoint ones are untouched."""
        scenario = catalog["abrupt_drift"]
        pre = _unperturbed_events(generator, scenario)
        post = scenario.events
        assert len(pre) == len(post)
        shift = max(1, scenario.dataset.n_categories // 2)
        midpoint = len(post) / 2
        remapped = 0
        for position, (before, after) in enumerate(zip(pre, post)):
            if before.kind != "interact":
                continue
            if position < midpoint:
                assert after.payload == before.payload
            elif after.payload != before.payload:
                expected = (before.payload.category + shift) % scenario.dataset.n_categories
                assert after.payload.category == expected
                remapped += 1
        assert remapped > 0

    def test_skewed_producers_hot_spot(self, catalog):
        scenario = catalog["skewed_producers"]
        inters = scenario.interactions()
        counts = {}
        for inter in inters:
            counts[inter.producer] = counts.get(inter.producer, 0) + 1
        hottest = max(counts.values())
        assert hottest >= 0.5 * len(inters)

    def test_duplicates_and_disorder(self, catalog):
        scenario = catalog["duplicate_out_of_order"]
        inters = scenario.interactions()
        keys = [(i.user_id, i.item_id, i.timestamp) for i in inters]
        assert len(keys) > len(set(keys))  # duplicates delivered
        times = [e.timestamp for e in scenario.events]
        assert times != sorted(times)  # delivery out of timestamp order

    def test_maintenance_storm_cadence(self, catalog):
        scenario = catalog["maintenance_storm"]
        assert scenario.maintenance_interval == 5
        # Interactions arrive in bursts around the cadence, not singly.
        run = best = 0
        for event in scenario.events:
            run = run + 1 if event.kind == "interact" else 0
            best = max(best, run)
        assert best >= scenario.maintenance_interval


class TestGeneratorValidation:
    def test_rejects_bad_train_fraction(self, ytube_small):
        with pytest.raises(ValueError, match="train_fraction"):
            ScenarioGenerator(base=ytube_small, train_fraction=1.0)

    def test_rejects_tiny_max_events(self, ytube_small):
        with pytest.raises(ValueError, match="max_events"):
            ScenarioGenerator(base=ytube_small, max_events=3)

    def test_catalog_names_stable(self):
        assert ScenarioGenerator.names() == SCENARIOS
        assert len(SCENARIOS) >= 8
