"""Parity tests for the batched serving path.

``recommend_batch`` (and the layers under it: ``top_k_batch`` in the
vectorized matcher, ``knn_batch`` in the CPPse-index) must return exactly
the lists the per-item path returns on the same state — batching amortizes
cost, never changes results.  Equality below is exact (``==`` on the
``(user_id, score)`` lists), not approximate.
"""

import numpy as np
import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.eval.harness import StreamEvaluator


def _fresh(ytube_small, ytube_stream, use_index):
    rec = SsRecRecommender(config=SsRecConfig(), use_index=use_index, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec


class TestMatcherBatch:
    def test_score_components_batch_rows_match_per_item(self, fitted_ssrec, ytube_stream):
        matcher = fitted_ssrec.matcher
        items = ytube_stream.items_in_partition(2)[:12]
        r_long_m, r_short_m = matcher.score_components_batch(items)
        assert r_long_m.shape == (len(items), len(matcher.user_ids))
        for row, item in enumerate(items):
            r_long, r_short = matcher.score_components(item)
            assert np.array_equal(r_long_m[row], r_long)
            assert np.array_equal(r_short_m[row], r_short)

    def test_top_k_batch_matches_per_item(self, fitted_ssrec, ytube_stream):
        matcher = fitted_ssrec.matcher
        items = ytube_stream.items_in_partition(2)[:12]
        assert matcher.top_k_batch(items, 7) == [matcher.top_k(it, 7) for it in items]

    def test_partial_selection_matches_full_sort(self, fitted_ssrec, ytube_stream):
        # k below and above the partial-selection cutoff agree with the
        # full lexsort prefix (ties included).
        matcher = fitted_ssrec.matcher
        item = ytube_stream.items_in_partition(2)[0]
        n = len(matcher.user_ids)
        full = matcher.top_k(item, n)
        for k in (1, 5, n // 2, n):
            assert matcher.top_k(item, k) == full[:k]

    def test_empty_batch(self, fitted_ssrec):
        assert fitted_ssrec.matcher.top_k_batch([], 5) == []


class TestRecommendBatchParity:
    @pytest.mark.parametrize("use_index", [False, True])
    def test_parity_on_static_state(
        self, ytube_small, ytube_stream, fitted_ssrec, fitted_ssrec_indexed, use_index
    ):
        rec = fitted_ssrec_indexed if use_index else fitted_ssrec
        items = ytube_stream.items_in_partition(2)[:20]
        assert rec.recommend_batch(items, 7) == [rec.recommend(it, 7) for it in items]

    @pytest.mark.parametrize("use_index", [False, True])
    def test_parity_across_mid_stream_updates(self, ytube_small, ytube_stream, use_index):
        # Twin recommenders (identical fit): one served per item, one in
        # micro-batches, with the same profile updates applied between
        # windows.  Every window's results must match exactly.
        seq = _fresh(ytube_small, ytube_stream, use_index)
        bat = _fresh(ytube_small, ytube_stream, use_index)
        items = ytube_stream.items_in_partition(2)[:24]
        updates = ytube_stream.partitions[2][:30]
        window_size = 8
        for start in range(0, len(items), window_size):
            for inter in updates[start : start + window_size]:
                item = ytube_small.item(inter.item_id)
                seq.update(inter, item)
                bat.update(inter, item)
            window = items[start : start + window_size]
            assert bat.recommend_batch(window, 5) == [
                seq.recommend(it, 5) for it in window
            ]

    def test_duplicate_items_in_window(self, fitted_ssrec_indexed, ytube_stream):
        # knn_batch dedupes identical pseudo-queries; duplicates must still
        # each get their (identical) result.
        item = ytube_stream.items_in_partition(2)[0]
        out = fitted_ssrec_indexed.recommend_batch([item, item, item], 5)
        assert out == [fitted_ssrec_indexed.recommend(item, 5)] * 3

    def test_empty_batch(self, fitted_ssrec):
        assert fitted_ssrec.recommend_batch([], 5) == []

    def test_default_k_from_config(self, fitted_ssrec, ytube_stream):
        items = ytube_stream.items_in_partition(2)[:3]
        out = fitted_ssrec.recommend_batch(items)
        assert all(len(ranked) == fitted_ssrec.config.default_k for ranked in out)

    def test_batch_flushes_pending_maintenance_once(
        self, fresh_ssrec_indexed, ytube_stream
    ):
        rec = fresh_ssrec_indexed
        inter = ytube_stream.partitions[2][0]
        rec.update(inter, ytube_stream.dataset.item(inter.item_id))
        assert rec._maintenance_pending
        rec.recommend_batch(ytube_stream.items_in_partition(2)[:4], 3)
        assert not rec._maintenance_pending


class TestMaintenanceIntervalConfig:
    def test_interval_comes_from_config(self, ytube_small, ytube_stream):
        rec = SsRecRecommender(
            config=SsRecConfig(maintenance_interval=7), use_index=True, seed=1
        )
        assert rec.maintenance_interval == 7

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError, match="maintenance_interval"):
            SsRecConfig(maintenance_interval=0)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            SsRecConfig(batch_size=0)

    def test_configured_interval_triggers_maintenance(self, ytube_small, ytube_stream):
        rec = SsRecRecommender(
            config=SsRecConfig(maintenance_interval=3), use_index=True, seed=1
        )
        rec.fit(ytube_small, ytube_stream.training_interactions())
        inter = ytube_small.interactions[-1]
        item = ytube_small.item(inter.item_id)
        for _ in range(3):
            rec.update(inter, item)
        assert rec._updates_since_maintenance == 0
        assert not rec._maintenance_pending


class TestHarnessRunBatch:
    def test_batch_size_one_matches_run(self, ytube_small, ytube_stream):
        evaluator = StreamEvaluator(ytube_stream, ks=(5, 10))
        seq = _fresh(ytube_small, ytube_stream, use_index=False)
        bat = _fresh(ytube_small, ytube_stream, use_index=False)
        out_seq = evaluator.run(seq)
        out_bat = evaluator.run_batch(bat, batch_size=1)
        assert out_bat.p_at_k == out_seq.p_at_k
        assert out_bat.hits == out_seq.hits
        assert out_bat.n_items == out_seq.n_items

    def test_windowed_run_covers_all_items(self, ytube_small, ytube_stream):
        evaluator = StreamEvaluator(ytube_stream, ks=(5,))
        seq = _fresh(ytube_small, ytube_stream, use_index=False)
        bat = _fresh(ytube_small, ytube_stream, use_index=False)
        out_seq = evaluator.run(seq)
        out_bat = evaluator.run_batch(bat, batch_size=16)
        assert out_bat.n_items == out_seq.n_items
        assert len(out_bat.per_partition_timing) == len(ytube_stream.test_indices)
        assert out_bat.timing.n == out_bat.n_items

    def test_invalid_batch_size_rejected(self, ytube_stream, fitted_ssrec):
        with pytest.raises(ValueError, match="batch_size"):
            StreamEvaluator(ytube_stream).run_batch(fitted_ssrec, batch_size=0)

    def test_default_window_comes_from_config(self, ytube_small, ytube_stream):
        # A recommender whose config caps the window at 1 must behave like
        # an explicit batch_size=1 run (exact parity with run()).
        evaluator = StreamEvaluator(ytube_stream, ks=(5,))
        config = SsRecConfig(batch_size=1)
        seq = SsRecRecommender(config=config, seed=1)
        seq.fit(ytube_small, ytube_stream.training_interactions())
        bat = SsRecRecommender(config=config, seed=1)
        bat.fit(ytube_small, ytube_stream.training_interactions())
        out_seq = evaluator.run(seq)
        out_bat = evaluator.run_batch(bat)  # batch_size resolved from config
        assert out_bat.p_at_k == out_seq.p_at_k
        assert out_bat.hits == out_seq.hits
