"""Sharder determinism, balance, block integrity and plan round-trips."""

import pytest

from repro.core.config import SsRecConfig
from repro.serve.sharding import (
    ShardPlan,
    UserSharder,
    build_shard_blocks,
    hash_shard,
    merge_top_k,
)


def _profiles(recommender):
    return list(recommender.profiles)


class TestHashShard:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 5, 16):
            for uid in (0, 1, 7, 12345, 10**12):
                s = hash_shard(uid, n)
                assert s == hash_shard(uid, n)
                assert 0 <= s < n

    def test_mixes_dense_ids(self):
        # Sequential ids must not all land on one shard (a raw modulo of
        # the id would stripe perfectly; the mixer should spread roughly).
        sizes = [0] * 4
        for uid in range(400):
            sizes[hash_shard(uid, 4)] += 1
        assert min(sizes) > 0
        assert max(sizes) < 400 * 0.5

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError, match="n_shards"):
            hash_shard(1, 0)


class TestUserSharder:
    def test_hash_plan_covers_everyone(self, fitted_ssrec):
        plan = UserSharder(4, "hash").plan(_profiles(fitted_ssrec))
        assert len(plan.assignments) == len(fitted_ssrec.profiles)
        assert sum(plan.shard_sizes()) == len(fitted_ssrec.profiles)

    def test_plans_are_deterministic(self, fitted_ssrec):
        n_cats = fitted_ssrec.bihmm.n_categories
        for strategy in ("hash", "block"):
            a = UserSharder(3, strategy).plan(_profiles(fitted_ssrec), n_categories=n_cats)
            b = UserSharder(3, strategy).plan(
                list(reversed(_profiles(fitted_ssrec))), n_categories=n_cats
            )
            assert a.assignments == b.assignments
            assert a.block_of_shard == b.block_of_shard

    def test_block_plan_never_splits_blocks(self, fitted_ssrec):
        n_cats = fitted_ssrec.bihmm.n_categories
        plan = UserSharder(3, "block").plan(_profiles(fitted_ssrec), n_categories=n_cats)
        assert plan.block_of_user  # membership recorded
        shard_of_block = {}
        for uid, block in plan.block_of_user.items():
            shard = plan.assignments[uid]
            assert shard_of_block.setdefault(block, shard) == shard

    def test_block_plan_requires_categories(self, fitted_ssrec):
        with pytest.raises(ValueError, match="n_categories"):
            UserSharder(2, "block").plan(_profiles(fitted_ssrec))

    def test_block_plan_balances_greedily(self, fitted_ssrec):
        n_cats = fitted_ssrec.bihmm.n_categories
        plan = UserSharder(3, "block").plan(_profiles(fitted_ssrec), n_categories=n_cats)
        stats = plan.balance_stats()
        # Greedy largest-first cannot be pathologically lopsided unless
        # one block dominates; the tiny YTube blocking has many blocks.
        assert stats["min_size"] > 0
        assert stats["imbalance"] < 2.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="n_shards"):
            UserSharder(0)
        with pytest.raises(ValueError, match="strategy"):
            UserSharder(2, "roundrobin")


class TestShardPlan:
    def test_shard_of_unseen_user_is_recorded_hash_route(self):
        plan = ShardPlan(n_shards=4)
        shard = plan.shard_of(999)
        assert shard == hash_shard(999, 4)
        assert plan.assignments[999] == shard
        assert plan.shard_of(999) == shard  # stable

    def test_users_of_partitions(self, fitted_ssrec):
        plan = UserSharder(3, "hash").plan(_profiles(fitted_ssrec))
        seen = set()
        for shard in range(plan.n_shards):
            users = plan.users_of(shard)
            assert users == sorted(users)
            assert not (seen & set(users))
            seen.update(users)
        assert len(seen) == len(fitted_ssrec.profiles)

    def test_round_trip_dict(self, fitted_ssrec):
        n_cats = fitted_ssrec.bihmm.n_categories
        plan = UserSharder(3, "block").plan(_profiles(fitted_ssrec), n_categories=n_cats)
        clone = ShardPlan.from_dict(plan.to_dict())
        assert clone.assignments == plan.assignments
        assert clone.block_of_shard == plan.block_of_shard
        assert clone.block_of_user == plan.block_of_user
        assert clone.strategy == plan.strategy

    def test_rebalance_stats(self):
        a = ShardPlan(2, assignments={1: 0, 2: 1, 3: 0})
        b = ShardPlan(2, assignments={1: 1, 2: 1, 4: 0})
        stats = a.rebalance_stats(b)
        assert stats["n_common"] == 2
        assert stats["n_moved"] == 1
        assert stats["moved_fraction"] == 0.5
        assert stats["only_self"] == 1
        assert stats["only_other"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardPlan(0)
        with pytest.raises(ValueError, match="strategy"):
            ShardPlan(2, strategy="nope")
        with pytest.raises(ValueError, match="outside"):
            ShardPlan(2, assignments={1: 5})


class TestBuildShardBlocks:
    def test_reconstructs_global_membership(self, fitted_ssrec):
        n_cats = fitted_ssrec.bihmm.n_categories
        plan = UserSharder(3, "block").plan(_profiles(fitted_ssrec), n_categories=n_cats)
        shard_blocks = build_shard_blocks(plan, fitted_ssrec.profiles, n_cats)
        rebuilt = {
            uid
            for blocks in shard_blocks.values()
            for block in blocks
            for uid in block.user_ids
        }
        assert rebuilt == set(plan.assignments)
        for blocks in shard_blocks.values():
            assert [b.block_id for b in blocks] == list(range(len(blocks)))

    def test_hash_plan_yields_no_blocks(self, fitted_ssrec):
        plan = UserSharder(3, "hash").plan(_profiles(fitted_ssrec))
        assert build_shard_blocks(plan, fitted_ssrec.profiles, 4) == {}


class TestMergeTopK:
    def test_merges_by_score_then_user(self):
        a = [(3, 5.0), (1, 2.0)]
        b = [(2, 5.0), (4, 3.0)]
        assert merge_top_k([a, b], 3) == [(2, 5.0), (3, 5.0), (4, 3.0)]

    def test_k_larger_than_union(self):
        assert merge_top_k([[(1, 1.0)], [(2, 0.5)]], 10) == [(1, 1.0), (2, 0.5)]

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match="k"):
            merge_top_k([], -1)

    def test_zero_k_is_empty_window(self):
        assert merge_top_k([[(1, 1.0)]], 0) == []


class TestConfigShardFields:
    def test_defaults_valid(self):
        cfg = SsRecConfig()
        assert cfg.n_shards == 1
        assert cfg.shard_strategy == "block"
        assert cfg.serve_workers == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            SsRecConfig(n_shards=0)
        with pytest.raises(ValueError, match="shard_strategy"):
            SsRecConfig(shard_strategy="x")
        with pytest.raises(ValueError, match="serve_workers"):
            SsRecConfig(serve_workers=-1)
