"""Tests for the experiment drivers' structure and helpers."""

import pytest

from repro.eval import experiments as ex
from repro.eval.experiments import _cumulative_means, _profiles_from_dataset
from repro.eval.metrics import TimingStats


class TestMakeDatasets:
    def test_small_scale_has_four_datasets(self):
        datasets = ex.make_datasets("small")
        assert list(datasets) == ["YTube", "SynYTube", "MLens", "SynMLens"]
        for ds in datasets.values():
            ds.validate()

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            ex.make_datasets("galactic")

    def test_seed_changes_data(self):
        a = ex.make_datasets("small", seed=1)["YTube"]
        b = ex.make_datasets("small", seed=2)["YTube"]
        assert a.interactions[:50] != b.interactions[:50]


class TestProfilesFromDataset:
    def test_every_active_user_profiled(self, ytube_small):
        profiles = _profiles_from_dataset(ytube_small)
        active = {i.user_id for i in ytube_small.interactions}
        assert {p.user_id for p in profiles} == active

    def test_window_one_captures_full_history(self, ytube_small):
        profiles = _profiles_from_dataset(ytube_small, window_size=1)
        by_user = {}
        for inter in ytube_small.interactions:
            by_user[inter.user_id] = by_user.get(inter.user_id, 0) + 1
        for profile in profiles:
            assert profile.n_long_events == by_user[profile.user_id]


class TestCumulativeMeans:
    def test_accumulates_across_partitions(self):
        series = _cumulative_means(
            [TimingStats([0.001, 0.001]), TimingStats([0.003, 0.003])]
        )
        assert series[1] == pytest.approx(1.0)   # ms
        assert series[2] == pytest.approx(2.0)   # (2*1 + 2*3) / 4

    def test_empty_partitions_safe(self):
        series = _cumulative_means([TimingStats(), TimingStats([0.002])])
        assert series[1] == 0.0
        assert series[2] == pytest.approx(2.0)


class TestResultFormatting:
    def test_fig7_result_helpers(self, ytube_small):
        result = ex.run_fig7(
            ytube_small, lambdas=(0.0, 0.5), ks=(5,), min_truth=3
        )
        assert result.optimal_lambda(5) in (0.0, 0.5)
        text = result.to_text()
        assert "lambda" in text and "Top 5" in text

    def test_fig5_groups_cover_all_users(self, ytube_small):
        result = ex.run_fig5(ytube_small, max_users=8, max_states=3, min_history=25)
        assert sum(result.users_by_group.values()) == 8
        assert set(result.hmm_by_group) == set(result.bihmm_by_group)

    def test_fig9_has_both_settings(self, ytube_small):
        result = ex.run_fig9(ytube_small, ks=(5,), min_truth=3)
        assert set(result.precision) == {"ssRec", "ssRec-nu"}

    def test_fig11_text_lists_datasets(self, ytube_small):
        result = ex.run_fig11({"YTube": ytube_small}, sizes=(1,))
        assert "YTube" in result.to_text()


class TestShardedThroughput:
    def test_parity_and_reporting(self, ytube_small):
        result = ex.run_sharded_throughput(
            ytube_small, shard_counts=(1, 2), k=10, max_items=48
        )
        assert result.parity_ok
        assert result.n_items == 48
        for path, series in result.items_per_sec.items():
            assert set(series) == {1, 2}, path
            assert all(ips > 0 for ips in series.values())
        assert set(result.baselines) == {
            "scan-item", "scan-batch", "index-item", "index-batch",
        }
        for n in (1, 2):
            summary = result.latency_ms[n]
            assert summary["p95_ms"] >= summary["p50_ms"] >= 0.0
        text = result.to_text()
        assert "parity with single index: exact" in text
        assert "p99_ms" in text
        assert result.speedup_over_scan(1) > 0
