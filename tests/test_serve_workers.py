"""Process backend: ShardWorkerPool mechanics and backend parity.

Spawning a worker process is expensive (a fresh interpreter imports
NumPy), so the parity-focused tests share one module-scoped process
service and its sequential twin; lifecycle tests that must start/stop
their own pools keep the shard count at 2.
"""

from __future__ import annotations

import copy
import time

import pytest

from repro.core.config import SsRecConfig
from repro.serve import ShardedRecommender, ShardWorkerError, ShardWorkerPool
from repro.serve.workers import _apply_op


@pytest.fixture(scope="module")
def stream_slice(ytube_small, ytube_stream):
    """A small serving burst: items plus their interaction payloads."""
    items = ytube_stream.items_in_partition(2)[:10]
    interactions = ytube_stream.partitions[2][:20]
    item_by_id = {item.item_id: item for item in ytube_small.items}
    return items, interactions, item_by_id


@pytest.fixture(scope="module")
def process_service(fitted_ssrec):
    """One process-backed service over a deepcopy of the shared model."""
    trained = copy.deepcopy(fitted_ssrec)
    service = ShardedRecommender.from_trained(
        trained, n_shards=2, strategy="hash", use_index=False, backend="process"
    )
    yield service
    service.close()


@pytest.fixture(scope="module")
def sequential_twin(fitted_ssrec):
    """The sequential-backend twin the process service must match."""
    trained = copy.deepcopy(fitted_ssrec)
    return ShardedRecommender.from_trained(
        trained, n_shards=2, strategy="hash", use_index=False, backend="sequential"
    )


class TestBackendSelection:
    def test_rejects_unknown_backend(self, fitted_ssrec):
        with pytest.raises(ValueError, match="backend must be one of"):
            ShardedRecommender.from_trained(
                fitted_ssrec, n_shards=2, backend="quantum"
            )

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="serve_backend must be one of"):
            SsRecConfig(serve_backend="quantum")

    def test_legacy_workers_imply_thread_backend(self, fitted_ssrec):
        service = ShardedRecommender.from_trained(
            fitted_ssrec, n_shards=2, workers=2
        )
        assert service.backend == "thread"
        service.close()

    def test_default_backend_is_sequential(self, fitted_ssrec):
        service = ShardedRecommender.from_trained(fitted_ssrec, n_shards=2)
        assert service.backend == "sequential"

    def test_backend_from_config(self, ytube_small, ytube_stream):
        from repro.core.ssrec import SsRecRecommender

        config = SsRecConfig(n_shards=2, serve_backend="process")
        rec = SsRecRecommender(config=config, use_index=False, seed=1)
        rec.fit(ytube_small, ytube_stream.training_interactions())
        service = ShardedRecommender.from_trained(rec)
        assert service.backend == "process"
        # No worker processes until the first operation needs them.
        assert service._pool is None
        service.close()


class TestProcessParity:
    """The process fan-out must not move a single bit vs sequential."""

    def test_streamed_serving_bit_identical(
        self, process_service, sequential_twin, stream_slice
    ):
        items, interactions, item_by_id = stream_slice
        for i, item in enumerate(items):
            process_service.observe_item(item)
            sequential_twin.observe_item(item)
            for inter in interactions[2 * i : 2 * i + 2]:
                payload = item_by_id.get(inter.item_id)
                process_service.update(inter, payload)
                sequential_twin.update(inter, payload)
            assert process_service.recommend(item, 6) == sequential_twin.recommend(
                item, 6
            )
        assert process_service.recommend_batch(items, 6) == (
            sequential_twin.recommend_batch(items, 6)
        )

    def test_worker_restart_continues_bit_identically(
        self, process_service, sequential_twin, stream_slice
    ):
        items, _, _ = stream_slice
        before = process_service.recommend_batch(items, 5)
        process_service.restart_workers()
        assert process_service.recommend_batch(items, 5) == before
        assert before == sequential_twin.recommend_batch(items, 5)

    def test_metrics_come_from_workers(self, process_service):
        rows = process_service.metrics()
        assert [row["shard_id"] for row in rows] == [0, 1]
        # The module's serving traffic ran inside the workers.
        assert sum(row["items_served"] for row in rows) > 0

    def test_n_users_counts_worker_side_joins(
        self, process_service, sequential_twin
    ):
        assert process_service.n_users == sequential_twin.n_users


class TestPoolLifecycle:
    def test_close_collects_worker_state(self, fitted_ssrec, ytube_stream):
        trained = copy.deepcopy(fitted_ssrec)
        items = ytube_stream.items_in_partition(2)[:4]
        service = ShardedRecommender.from_trained(
            trained, n_shards=2, strategy="hash", use_index=False, backend="process"
        )
        expected = [service.recommend(item, 5) for item in items]
        service.close()
        assert service._pool is None
        # The collected parent-side state serves identically (a fresh pool
        # respawns lazily from it on the next call).
        assert [service.recommend(item, 5) for item in items] == expected
        service.close()

    def test_snapshot_of_live_service_is_current(
        self, fitted_ssrec, ytube_stream, ytube_small, tmp_path
    ):
        trained = copy.deepcopy(fitted_ssrec)
        items = ytube_stream.items_in_partition(2)[:4]
        interactions = ytube_stream.partitions[2][:10]
        item_by_id = {item.item_id: item for item in ytube_small.items}
        with ShardedRecommender.from_trained(
            trained, n_shards=2, strategy="hash", use_index=False, backend="process"
        ) as service:
            for inter in interactions:
                service.update(inter, item_by_id.get(inter.item_id))
            expected = service.recommend_batch(items, 5)
            service.save(tmp_path / "snap")
        restored = ShardedRecommender.load(tmp_path / "snap")
        try:
            assert restored.backend == "process"
            assert restored.recommend_batch(items, 5) == expected
        finally:
            restored.close()

    def test_load_backend_override(self, fitted_ssrec, tmp_path):
        trained = copy.deepcopy(fitted_ssrec)
        service = ShardedRecommender.from_trained(
            trained, n_shards=2, strategy="hash", use_index=False, backend="process"
        )
        service.save(tmp_path / "snap")
        service.close()
        restored = ShardedRecommender.load(tmp_path / "snap", backend="sequential")
        assert restored.backend == "sequential"
        with pytest.raises(ValueError, match="backend must be one of"):
            ShardedRecommender.load(tmp_path / "snap", backend="quantum")

    def test_dead_worker_raises(self, fitted_ssrec):
        trained = copy.deepcopy(fitted_ssrec)
        service = ShardedRecommender.from_trained(
            trained, n_shards=2, strategy="hash", use_index=False, backend="process"
        )
        pool = service._ensure_pool()
        assert pool.alive
        # Kill one worker behind the pool's back: the next call must fail
        # loudly instead of hanging.
        pool._workers[0].process.terminate()
        pool._workers[0].process.join(timeout=10)
        with pytest.raises(ShardWorkerError, match="died"):
            pool.call(0, "n_users")
        assert not pool.alive
        pool.close()
        service._pool = None  # closed manually; nothing left to collect

    def test_collect_all_with_dead_worker_fails_fast(self, fitted_ssrec):
        """Regression: collect_all used to block on the raw reply queue,
        so a worker dying mid-collection hung the parent for the full
        reply timeout (or forever when the worker died *inside* a queue
        write, leaving a torn frame no timeout-get could see).  The pump
        thread plus liveness polling must surface the death in bounded
        time, and close() must not hang on the dead worker either."""
        trained = copy.deepcopy(fitted_ssrec)
        service = ShardedRecommender.from_trained(
            trained, n_shards=2, strategy="hash", use_index=False, backend="process"
        )
        pool = service._ensure_pool()
        assert len(pool.collect_all()) == 2  # healthy path first
        pool._workers[0].process.terminate()
        pool._workers[0].process.join(timeout=10)
        started = time.monotonic()
        with pytest.raises(ShardWorkerError, match="died"):
            pool.collect_all()
        assert time.monotonic() - started < pool.reply_timeout / 2
        started = time.monotonic()
        pool.close()
        assert time.monotonic() - started < 30
        service._pool = None  # closed manually; nothing left to collect

    def test_closed_pool_rejects_requests(self, fitted_ssrec):
        trained = copy.deepcopy(fitted_ssrec)
        service = ShardedRecommender.from_trained(
            trained, n_shards=2, strategy="hash", use_index=False, backend="process"
        )
        pool = service._ensure_pool()
        service.close()
        with pytest.raises(ShardWorkerError, match="closed"):
            pool.call(0, "n_users")

    def test_pool_requires_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardWorkerPool([])


class TestReplyDiscipline:
    """Sequence-tagged exchanges: failed fan-outs must never skew later
    replies, and a death in the fan-out/reply gap must fail fast."""

    @pytest.fixture
    def pool_service(self, fitted_ssrec):
        trained = copy.deepcopy(fitted_ssrec)
        service = ShardedRecommender.from_trained(
            trained, n_shards=2, strategy="hash", use_index=False, backend="process"
        )
        pool = service._ensure_pool()
        yield service, pool
        pool.close()
        service._pool = None  # closed manually; nothing left to collect

    def test_death_between_fanout_and_reply_fails_fast(self, pool_service):
        service, pool = pool_service
        worker = pool._workers[1]
        assert pool.call(1, "n_users") >= 0  # worker fully up
        worker.process.terminate()
        worker.process.join(timeout=10)
        # The request is already enqueued — exactly the fan-out/reply gap —
        # and no reply will ever come.  Liveness polling must surface the
        # death in a poll interval, not after the full reply timeout.
        seq = pool._send(worker, "n_users", ())
        started = time.monotonic()
        with pytest.raises(ShardWorkerError, match="died"):
            pool._reply_from(worker, 1, seq)
        assert time.monotonic() - started < pool.reply_timeout / 2

    def test_forged_stale_reply_is_discarded(self, pool_service):
        service, pool = pool_service
        expected = pool.call(0, "n_users")
        worker = pool._workers[0]
        # A leftover reply from an abandoned exchange (its tag was already
        # consumed or abandoned) sits in the queue; the next call must
        # skip it rather than serve garbage.
        worker.replies.put((worker.seq, "ok", "stale-garbage"))
        assert pool.call(0, "n_users") == expected

    def test_failed_map_leaves_later_exchanges_aligned(self, pool_service):
        service, pool = pool_service
        counts = pool.map("n_users")
        # The bad op fails on worker 0 and unwinds map() mid-collection,
        # abandoning worker 1's (error) reply in its queue.
        with pytest.raises(ShardWorkerError, match="unknown worker op"):
            pool.map("teleport")
        # Before sequence tags, worker 1's stale error would be consumed
        # as the reply of whatever came next, failing it spuriously and
        # shifting every later reply off by one.
        assert pool.call(1, "n_users") == counts[1]
        assert pool.map("n_users") == counts


class TestWorkerOps:
    """The worker-side dispatcher, exercised in-process."""

    def test_unknown_op_rejected(self, fitted_ssrec):
        service = ShardedRecommender.from_trained(fitted_ssrec, n_shards=2)
        with pytest.raises(ShardWorkerError, match="unknown worker op"):
            _apply_op(service.shards[0], "teleport", ())

    def test_remote_error_carries_traceback(self, fitted_ssrec):
        trained = copy.deepcopy(fitted_ssrec)
        service = ShardedRecommender.from_trained(
            trained, n_shards=2, strategy="hash", use_index=False, backend="process"
        )
        pool = service._ensure_pool()
        with pytest.raises(ShardWorkerError, match="unknown worker op"):
            pool.call(0, "teleport")
        # The worker survives a failed request.
        assert pool.call(0, "n_users") == service.shards[0].n_users
        service.close()

    def test_probed_users_empty_without_index(self, fitted_ssrec, ytube_stream):
        service = ShardedRecommender.from_trained(
            fitted_ssrec, n_shards=2, use_index=False
        )
        item = ytube_stream.items_in_partition(2)[0]
        assert _apply_op(service.shards[0], "probed_users", (item,)) == set()


class TestWorkerObservability:
    """Metrics and spans must cross the worker process boundary."""

    def test_obs_registries_merge_across_the_pool(self, process_service):
        # Each worker ships its registry as a plain dump over the reply
        # queue ("obs" op); the service merges them into one view.
        pool = process_service._ensure_pool()
        dumps = pool.map("obs")
        assert len(dumps) == 2
        from repro.obs import MetricsRegistry

        merged = process_service.obs_registry()
        shard_labels = {
            counter.labels["shard"]
            for counter in merged.counters()
            if counter.name == "shard.queries"
        }
        assert shard_labels == {"0", "1"}
        # The merged totals equal the per-worker dumps folded by hand —
        # the round trip through the queue loses nothing.
        by_hand = MetricsRegistry()
        for dump in dumps:
            by_hand.merge(MetricsRegistry.from_dict(dump))
        assert by_hand.to_dict() == merged.to_dict()
        # The module's serving traffic ran inside the workers.
        total_items = sum(
            counter.value
            for counter in merged.counters()
            if counter.name == "shard.items_served"
        )
        assert total_items > 0

    def test_spans_propagate_through_worker_processes(
        self, process_service, sequential_twin, stream_slice
    ):
        from repro.obs import Trace, use_trace

        items, _, _ = stream_slice
        trace = Trace()
        with use_trace(trace):
            traced = process_service.recommend_batch(items[:4], 5)
        # Tracing is purely observational: bit-identical results.
        assert traced == sequential_twin.recommend_batch(items[:4], 5)
        names = trace.span_names()
        # Worker-side spans were shipped back over the reply queue and
        # grafted into the caller's trace, shard work included.
        assert "worker.recommend_batch" in names
        assert "shard.scan" in names
        worker_shards = {
            entry["tags"]["shard"]
            for entry in trace.spans()
            if entry["name"] == "worker.recommend_batch"
        }
        assert worker_shards == {"0", "1"}
        # One consistent trace id: worker spans carry the caller's.
        untraced = process_service.recommend_batch(items[:4], 5)
        assert untraced == traced
        assert len(trace) == len(trace.spans())  # no spans leaked after exit
