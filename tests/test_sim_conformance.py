"""Conformance runner: zero divergences, oracle semantics, edge regressions."""

import copy

import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.schema import Interaction, SocialItem
from repro.sim import (
    CONFORMANCE_PATHS,
    ConformanceRunner,
    OracleMatcher,
    ScenarioGenerator,
    matches_exactly,
    matches_within_ties,
)


@pytest.fixture(scope="module")
def reports(ytube_small):
    """Two adversarial scenarios replayed through the full path matrix:
    cold-start users exercise zero-interaction profiles and mid-stream
    joins; the maintenance storm exercises Algorithm-2 boundaries.  The
    matrix includes the process backend with its rolling mid-stream
    worker restart (restart_window=1)."""
    generator = ScenarioGenerator(base=ytube_small, seed=5, max_events=240)
    runner = ConformanceRunner(
        k=6, window_size=6, n_shards=3, snapshot_window=1, restart_window=1
    )
    return {
        name: runner.run(generator.generate(name))
        for name in ("cold_start_users", "maintenance_storm")
    }


class TestConformance:
    def test_zero_divergences(self, reports):
        for name, report in reports.items():
            assert report.conformant, f"{name}:\n{report.to_text()}"

    def test_all_paths_replayed(self, reports):
        for report in reports.values():
            assert set(report.paths) == set(CONFORMANCE_PATHS)
            for path_report in report.paths.values():
                assert path_report.n_windows > 0
                assert path_report.n_queries > 0
                assert path_report.items_per_sec > 0

    def test_snapshot_reloaded_mid_stream(self, reports):
        for report in reports.values():
            assert report.paths["sharded-index-block"].snapshot_reloads == 1

    def test_workers_restarted_mid_stream(self, reports):
        for report in reports.values():
            assert report.paths["sharded-scan-process"].worker_restarts == 1

    def test_report_renders(self, reports):
        for report in reports.values():
            text = report.to_text()
            assert "conformance: EXACT" in text
            for path in CONFORMANCE_PATHS:
                assert path in text


class TestRunnerValidation:
    def test_rejects_unknown_path(self):
        with pytest.raises(ValueError, match="unknown conformance paths"):
            ConformanceRunner(paths=("scan-item", "quantum-tunnel"))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k"):
            ConformanceRunner(k=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window_size"):
            ConformanceRunner(window_size=0)


class TestOracle:
    def test_oracle_matches_vectorized_scan(self, fitted_ssrec, ytube_stream):
        oracle = OracleMatcher(fitted_ssrec.scorer, fitted_ssrec.profiles)
        for item in ytube_stream.items_in_partition(2)[:10]:
            want = oracle.top_k(item, 8)
            got = fitted_ssrec.recommend(item, 8)
            assert matches_within_ties(got, want), item.item_id

    def test_candidate_restriction(self, fitted_ssrec, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        oracle = OracleMatcher(fitted_ssrec.scorer, fitted_ssrec.profiles)
        full = oracle.top_k(item, 5)
        candidates = {uid for uid, _ in full[:2]}
        restricted = oracle.top_k(item, 5, candidates)
        assert restricted == [pair for pair in full if pair[0] in candidates]

    def test_rank_k_zero_is_empty(self, fitted_ssrec, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        oracle = OracleMatcher(fitted_ssrec.scorer, fitted_ssrec.profiles)
        assert oracle.top_k(item, 0) == []

    def test_predicates(self):
        a = [(1, 1.0), (2, 0.5)]
        assert matches_exactly(a, [(1, 1.0), (2, 0.5)])
        assert not matches_exactly(a, [(1, 1.0), (2, 0.5 + 1e-15)])
        assert matches_within_ties(a, [(1, 1.0), (2, 0.5 + 1e-12)])
        # Tied users may swap order...
        assert matches_within_ties([(2, 1.0), (1, 1.0)], [(1, 1.0), (2, 1.0)])
        # ...but the user multiset and the score sequence must hold.
        assert not matches_within_ties(a, [(1, 1.0), (3, 0.5)])
        assert not matches_within_ties(a, [(1, 1.0), (2, 0.4)])
        assert not matches_within_ties(a, [(1, 1.0)])


class TestServingEdgeCases:
    """Regressions for the silent edge cases the simulator hits."""

    def test_facade_k_zero_is_empty_window(self, fitted_ssrec, fitted_ssrec_indexed, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        assert fitted_ssrec.recommend(item, 0) == []
        assert fitted_ssrec.recommend_batch([item, item], 0) == [[], []]
        assert fitted_ssrec_indexed.recommend(item, 0) == []
        assert fitted_ssrec_indexed.recommend_batch([item], 0) == [[]]

    def test_facade_k_none_still_defaults(self, fitted_ssrec, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        ranked = fitted_ssrec.recommend(item)
        assert len(ranked) == min(
            fitted_ssrec.config.default_k, len(fitted_ssrec.profiles)
        )

    def test_zero_interaction_user_serves_everywhere(self, ytube_small, ytube_stream):
        """A user present in the store with no events must score (not
        raise) on the scan path and survive index maintenance."""
        rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
        rec.fit(ytube_small, ytube_stream.training_interactions())
        ghost = max(ytube_small.consumer_ids) + 500
        rec.profiles.get_or_create(ghost)
        item = ytube_stream.items_in_partition(2)[0]
        ranked = rec.recommend(item, len(rec.profiles))
        assert ghost in {uid for uid, _ in ranked}
        # The ghost's vectorized score must equal the reference scorer's.
        oracle = OracleMatcher(rec.scorer, rec.profiles)
        want = dict(oracle.top_k(item, len(rec.profiles)))
        got = dict(ranked)
        assert got[ghost] == pytest.approx(want[ghost], abs=1e-9)
        # Index mode: build over the store including the ghost, then
        # maintain it — both must be no-ops, not errors.
        rec.attach_index()
        rec._maintenance_pending.add(ghost)
        rec.run_maintenance()
        assert rec.recommend(item, 5) is not None

    def test_out_of_universe_producer_counts_survive(self, ytube_small, ytube_stream):
        """Interactions with a producer first seen mid-stream must move
        the vectorized scores exactly like the reference scorer says —
        the counts may not silently vanish from the dense matrix."""
        rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
        rec.fit(ytube_small, ytube_stream.training_interactions())
        new_pid = 10**6
        template = ytube_stream.items_in_partition(2)[0]
        novel = SocialItem(
            item_id=10**6,
            category=template.category,
            producer=new_pid,
            entities=template.entities,
            text=template.text,
            timestamp=template.timestamp,
        )
        user = ytube_small.consumer_ids[0]
        # Push enough events to flush the short-term window into the
        # long-term list (where producer counts live).
        for step in range(rec.config.window_size + 1):
            rec.update(
                Interaction(
                    user_id=user,
                    item_id=novel.item_id,
                    category=novel.category,
                    producer=new_pid,
                    timestamp=template.timestamp + step,
                ),
                novel,
            )
        profile = rec.profiles.get(user)
        assert profile.producer_counts.get(new_pid, 0) > 0
        naive = rec.scorer.score(novel, profile)
        got = dict(rec.recommend(novel, len(rec.profiles)))
        assert got[user] == pytest.approx(naive, abs=1e-9)
        # And the batched path agrees bit for bit with the per-item path.
        assert rec.recommend_batch([novel], 10) == [rec.recommend(novel, 10)]
