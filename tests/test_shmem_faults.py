"""Fault injection for the shared-memory IPC layer.

Every fault a segment-based fan-out can hit mid-flight — a worker killed
inside a serve window, a segment unlinked under a live reader, a stale
epoch manifest — must surface as a *typed* error
(:class:`ShardWorkerError` / :class:`ShmemError`) in bounded time.
Never a hang, never a silently wrong answer.

CI replays this battery under both ``spawn`` and ``forkserver`` start
methods (the ``REPRO_SHMEM_START_METHOD`` environment variable, read by
:class:`ShmemWorkerPool` at construction).
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.serve import ShardedRecommender
from repro.serve.shmem import (
    SegmentManifest,
    ShmemError,
    ShmemWorkerPool,
    live_segment_names,
)
from repro.serve.workers import ShardWorkerError


@pytest.fixture
def service(fitted_ssrec, ytube_stream):
    """A warmed two-shard shmem service (segments published, workers
    attached) plus a probe item; closed after each test."""
    service = ShardedRecommender.from_trained(
        fitted_ssrec, n_shards=2, strategy="hash", use_index=False, backend="shmem"
    )
    item = ytube_stream.items_in_partition(2)[0]
    baseline = service.recommend(item, 6)  # spawn + publish + attach
    yield service, item, baseline
    service.close()


def _kill(pool, index: int) -> None:
    worker = pool._workers[index]
    worker.process.terminate()
    worker.process.join(timeout=10)


class TestWorkerDeath:
    def test_kill_mid_window_raises_typed_error_fast(self, service):
        service, item, _ = service
        pool = service._pool
        _kill(pool, 0)
        started = time.monotonic()
        with pytest.raises(ShardWorkerError, match="died"):
            service.recommend(item, 6)
        # Liveness polling, not the full reply timeout, surfaces it.
        assert time.monotonic() - started < pool.reply_timeout / 2
        assert not pool.alive

    def test_kill_in_fanout_reply_gap_raises_fast(self, service):
        """The request is already enqueued when the worker dies — the
        exact window where a naive queue read blocks forever."""
        service, item, _ = service
        pool = service._pool
        worker = pool._workers[1]
        manifest = pool.publisher.manifest(service.shards[1].shard_id)
        payload = pickle.dumps(("item", item, 6), protocol=pickle.HIGHEST_PROTOCOL)
        seq = pool._send(worker, "serve", (manifest, payload))
        _kill(pool, 1)
        started = time.monotonic()
        with pytest.raises(ShardWorkerError, match="died"):
            pool._reply_from(worker, 1, seq)
        assert time.monotonic() - started < pool.reply_timeout / 2

    def test_killed_worker_recovers_by_restart(self, service):
        service, item, baseline = service
        pool = service._pool
        _kill(pool, 0)
        with pytest.raises(ShardWorkerError, match="died"):
            service.recommend(item, 6)
        # Shmem workers are stateless: a plain respawn fully recovers —
        # the fresh worker re-attaches the current epoch on first use.
        pool.restart(0)
        assert service.recommend(item, 6) == baseline


class TestSegmentUnlink:
    def test_unlink_under_live_reader_serves_then_fails_reattach(self, service):
        """POSIX semantics, both halves: existing mappings survive the
        unlink (attached workers keep serving the complete old state),
        while any *new* attach of the vanished name is a typed error."""
        service, item, baseline = service
        pool = service._pool
        for shm in pool.publisher._segments.values():
            shm.unlink()  # yank every segment name out from under the pool
        # Attached workers still hold valid mappings: same answer.
        assert service.recommend(item, 6) == baseline
        # A respawned worker has no mapping and must re-attach — which
        # now fails loudly instead of serving stale or garbage state.
        pool.restart_all()
        with pytest.raises(ShmemError, match="vanished"):
            service.recommend(item, 6)

    def test_republish_recovers_from_vanished_segments(self, service):
        service, item, baseline = service
        pool = service._pool
        for shm in pool.publisher._segments.values():
            shm.unlink()
        pool.restart_all()
        with pytest.raises(ShmemError, match="vanished"):
            service.recommend(item, 6)
        # Copy-on-publish is the recovery path too: republishing fresh
        # segments (epoch bump) brings the pool back bit-identically.
        pool.invalidate()
        assert service.recommend(item, 6) == baseline


class TestStaleEpoch:
    def test_stale_epoch_manifest_is_shmem_error(self, service):
        service, item, _ = service
        pool = service._pool
        worker = pool._workers[0]
        current = pool.publisher.manifest(service.shards[0].shard_id)
        stale = SegmentManifest(
            name=current.name,
            epoch=current.epoch + 5,
            nbytes=current.nbytes,
            checksum=current.checksum,
        )
        payload = pickle.dumps(("item", item, 6), protocol=pickle.HIGHEST_PROTOCOL)
        seq = pool._send(worker, "serve", (stale, payload))
        with pytest.raises(ShmemError, match="stale manifest"):
            pool._reply_from(worker, 0, seq)
        # The worker survives the bad manifest and keeps serving the
        # real epoch afterwards.
        assert service.recommend(item, 6)

    def test_shmem_error_is_a_shard_worker_error(self):
        # One except-clause catches the whole worker failure family.
        assert issubclass(ShmemError, ShardWorkerError)


class TestErrorKindRouting:
    def test_non_shmem_worker_errors_stay_generic(self, service):
        """The typed re-raise must not over-claim: a generic worker
        failure (unknown op) is a ShardWorkerError, not a ShmemError."""
        service, _, _ = service
        pool = service._pool
        with pytest.raises(ShardWorkerError, match="unknown shmem worker op") as info:
            pool.call(0, "teleport")
        assert not isinstance(info.value, ShmemError)
        # The worker survives a failed request.
        assert pool.call(0, "ping") == "pong"


class TestStartMethods:
    def test_forkserver_pool_serves_identically(self, service):
        """The battery's CI matrix runs spawn and forkserver; prove the
        forkserver pool is wire-compatible in-tree too."""
        service, item, baseline = service
        pool = ShmemWorkerPool(service.shards, start_method="forkserver")
        try:
            got = pool.serve_item(item, 6)
        finally:
            pool.close()
        from repro.serve.sharding import merge_top_k

        assert merge_top_k(got, 6) == baseline

    def test_fork_is_rejected(self, service):
        service, _, _ = service
        with pytest.raises(ValueError, match="start_method"):
            ShmemWorkerPool(service.shards, start_method="fork")


class TestNoLeakOnFailure:
    def test_faulted_pool_close_leaves_no_segments(self, service):
        service, item, _ = service
        pool = service._pool
        names = [
            pool.publisher.manifest(s.shard_id).name for s in service.shards
        ]
        _kill(pool, 0)
        with pytest.raises(ShardWorkerError):
            service.recommend(item, 6)
        service.close()
        live = set(live_segment_names())
        assert not (set(names) & live)
