"""Tests for the input-conditioned HMM (the b-HMM reformulation)."""

import numpy as np
import pytest

from repro.hmm.base import DiscreteHMM
from repro.hmm.conditioned import InputConditionedHMM


class TestConstruction:
    def test_parameters_are_stochastic(self):
        model = InputConditionedHMM(3, 4, 2, seed=0)
        assert model.pi.sum() == pytest.approx(1.0)
        assert model.A.shape == (2, 3, 3)
        assert model.B.shape == (2, 3, 4)
        np.testing.assert_allclose(model.A.sum(axis=2), 1.0)
        np.testing.assert_allclose(model.B.sum(axis=2), 1.0)

    def test_invalid_sizes_rejected(self):
        for bad in [(0, 2, 2), (2, 0, 2), (2, 2, 0)]:
            with pytest.raises(ValueError):
                InputConditionedHMM(*bad)


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        model = InputConditionedHMM(2, 3, 2, seed=0)
        with pytest.raises(ValueError, match="match"):
            model.log_likelihood([0, 1], [0])

    def test_out_of_range_inputs_rejected(self):
        model = InputConditionedHMM(2, 3, 2, seed=0)
        with pytest.raises(ValueError, match="outside"):
            model.log_likelihood([0, 1], [0, 5])


class TestEquivalenceWithPlainHMM:
    def test_single_input_reduces_to_discrete_hmm(self):
        """With one input symbol the conditioned model IS a classic HMM."""
        cond = InputConditionedHMM(3, 4, 1, seed=7)
        plain = DiscreteHMM(3, 4, seed=0)
        plain.pi = cond.pi.copy()
        plain.A = cond.A[0].copy()
        plain.B = cond.B[0].copy()
        seq = [0, 2, 1, 3, 2, 0]
        zeros = [0] * len(seq)
        assert cond.log_likelihood(seq, zeros) == pytest.approx(plain.log_likelihood(seq))
        np.testing.assert_array_equal(cond.viterbi(seq, zeros), plain.viterbi(seq))
        np.testing.assert_allclose(
            cond.predict_next_distribution(seq, zeros, 0),
            plain.predict_next_distribution(seq),
        )


class TestFit:
    def test_monotone_log_likelihood_without_shrinkage(self):
        rng = np.random.default_rng(0)
        pairs = [
            (rng.integers(0, 3, size=50), rng.integers(0, 2, size=50))
            for _ in range(3)
        ]
        model = InputConditionedHMM(2, 3, 2, seed=1)
        lls = model.fit(pairs, n_iter=15, shrinkage=0.0).log_likelihoods
        assert all(b >= a - 1e-8 for a, b in zip(lls, lls[1:]))

    def test_learns_input_dependent_emission(self):
        """Input 0 always emits symbol 0; input 1 always emits symbol 1."""
        rng = np.random.default_rng(1)
        inputs = rng.integers(0, 2, size=200)
        observations = inputs.copy()  # symbol == input
        model = InputConditionedHMM(2, 2, 2, seed=2)
        model.fit([(observations, inputs)], n_iter=30, shrinkage=0.0)
        dist0 = model.predict_next_distribution(observations[:50], inputs[:50], 0)
        dist1 = model.predict_next_distribution(observations[:50], inputs[:50], 1)
        assert int(np.argmax(dist0)) == 0
        assert int(np.argmax(dist1)) == 1

    def test_shrinkage_pools_toward_shared_behaviour(self):
        rng = np.random.default_rng(3)
        inputs = rng.integers(0, 2, size=150)
        observations = inputs.copy()
        pooled = InputConditionedHMM(2, 2, 2, seed=4)
        pooled.fit([(observations, inputs)], n_iter=20, shrinkage=1.0)
        # Full shrinkage -> all inputs share statistics -> B[0] ~= B[1].
        np.testing.assert_allclose(pooled.B[0], pooled.B[1], atol=1e-6)

    def test_invalid_shrinkage_rejected(self):
        model = InputConditionedHMM(2, 2, 2, seed=0)
        with pytest.raises(ValueError, match="shrinkage"):
            model.fit([([0, 1], [0, 1])], shrinkage=1.5)

    def test_empty_pairs_rejected(self):
        model = InputConditionedHMM(2, 2, 2, seed=0)
        with pytest.raises(ValueError, match="at least one"):
            model.fit([])


class TestPrediction:
    def test_next_distribution_sums_to_one(self):
        model = InputConditionedHMM(3, 4, 2, seed=5)
        dist = model.predict_next_distribution([0, 1, 3], [0, 1, 0], 1)
        assert dist.sum() == pytest.approx(1.0)

    def test_invalid_next_input_rejected(self):
        model = InputConditionedHMM(3, 4, 2, seed=5)
        with pytest.raises(ValueError, match="next_input"):
            model.predict_next_distribution([0], [0], 9)

    def test_marginal_with_weights(self):
        model = InputConditionedHMM(3, 4, 2, seed=5)
        dist = model.predict_next_marginal([0, 1], [0, 1], np.array([0.9, 0.1]))
        assert dist.sum() == pytest.approx(1.0)
        # Degenerate weights equal direct conditioning.
        np.testing.assert_allclose(
            model.predict_next_marginal([0, 1], [0, 1], np.array([1.0, 0.0])),
            model.predict_next_distribution([0, 1], [0, 1], 0),
        )

    def test_marginal_weight_shape_validated(self):
        model = InputConditionedHMM(3, 4, 2, seed=5)
        with pytest.raises(ValueError, match="shape"):
            model.predict_next_marginal([0], [0], np.array([1.0, 0.0, 0.0]))

    def test_top_k(self):
        model = InputConditionedHMM(3, 4, 2, seed=5)
        top = model.predict_top_k([0, 1, 2], [0, 0, 1], 1, k=2)
        dist = model.predict_next_distribution([0, 1, 2], [0, 0, 1], 1)
        assert len(top) == 2
        assert dist[top[0]] >= dist[top[1]]

    def test_filter_state_sums_to_one(self):
        model = InputConditionedHMM(3, 4, 2, seed=5)
        alpha = model.filter_state([0, 1], [1, 0])
        assert alpha.sum() == pytest.approx(1.0)

    def test_viterbi_shape_and_range(self):
        model = InputConditionedHMM(3, 4, 2, seed=5)
        states = model.viterbi([0, 1, 2, 3], [0, 1, 1, 0])
        assert states.shape == (4,)
        assert states.min() >= 0 and states.max() < 3
