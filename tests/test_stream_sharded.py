"""Sharded fan-out/merge topology and the all-grouping broadcast."""

import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.serve import ShardedRecommender
from repro.stream.engine import LocalEngine
from repro.stream.recommend_topology import build_recommendation_topology
from repro.stream.sharded_topology import (
    ShardMatchBolt,
    ShardMergeBolt,
    build_sharded_recommend_topology,
)
from repro.stream.topology import Bolt, Emitter, Grouping, TopologyBuilder
from repro.stream.tuples import StreamTuple


class _CountingBolt(Bolt):
    def __init__(self, log):
        self._log = log
        self._task = None

    def prepare(self, task_index, n_tasks):
        self._task = task_index

    def process(self, tup, emitter):
        self._log.append((self._task, tup["x"]))


class TestAllGrouping:
    def test_route_returns_every_task(self):
        g = Grouping(source="s", kind="all")
        assert g.route(StreamTuple(values={}), 4, 0) == [0, 1, 2, 3]

    def test_other_kinds_return_single_task(self):
        tup = StreamTuple(values={"f": 1})
        assert Grouping(source="s", kind="shuffle").route(tup, 4, 5) == [1]
        assert Grouping(source="s", kind="global").route(tup, 4, 5) == [0]
        assert len(Grouping(source="s", kind="fields", fields=("f",)).route(tup, 4, 0)) == 1

    def test_engine_broadcasts_to_all_tasks(self):
        from repro.stream.topology import Spout

        class ListSpout(Spout):
            def __init__(self, values):
                self._values = list(values)

            def open(self):
                self._cursor = 0

            def next_tuple(self):
                if self._cursor >= len(self._values):
                    return None
                v = self._values[self._cursor]
                self._cursor += 1
                return StreamTuple(values={"x": v})

        log = []
        builder = TopologyBuilder()
        builder.set_spout("src", ListSpout([10, 20]))
        builder.set_bolt("fan", lambda: _CountingBolt(log), parallelism=3).all_grouping("src")
        report = LocalEngine(builder.build()).run()
        # Every tuple reached every one of the 3 tasks.
        assert sorted(log) == sorted((t, v) for t in range(3) for v in (10, 20))
        assert report.tuples_processed["fan"] == 6


class TestShardedTopology:
    def _service_and_single(self, ytube_small, ytube_stream, n_shards=3):
        def fresh():
            rec = SsRecRecommender(config=SsRecConfig(), use_index=True, seed=1)
            rec.fit(ytube_small, ytube_stream.training_interactions())
            return rec

        single = fresh()
        service = ShardedRecommender.from_trained(
            fresh(), n_shards=n_shards, strategy="block"
        )
        return single, service

    def test_matches_single_recommender_topology(self, ytube_small, ytube_stream):
        single, service = self._service_and_single(ytube_small, ytube_stream)
        items = ytube_stream.items_in_partition(2)[:12]
        topo_single, sink_single = build_recommendation_topology(
            items, single.extractor, single, ytube_small.n_categories, k=5
        )
        LocalEngine(topo_single).run()
        topo_sharded, sink_sharded = build_sharded_recommend_topology(
            items, service.trained.extractor, service, k=5
        )
        LocalEngine(topo_sharded).run()
        assert sink_sharded.results == sink_single.results

    def test_one_result_per_item(self, ytube_small, ytube_stream):
        _, service = self._service_and_single(ytube_small, ytube_stream, n_shards=2)
        items = ytube_stream.items_in_partition(2)[:8]
        topology, sink = build_sharded_recommend_topology(
            items, service.trained.extractor, service, k=4
        )
        LocalEngine(topology).run()
        assert len(sink.results) == len(items)
        assert all(len(ranked) == 4 for ranked in sink.results.values())

    def test_match_bolt_rejects_wrong_parallelism(self, ytube_small, ytube_stream):
        _, service = self._service_and_single(ytube_small, ytube_stream, n_shards=2)
        bolt = ShardMatchBolt(service, k=5)
        with pytest.raises(ValueError, match="parallelism"):
            bolt.prepare(0, 5)

    def test_merge_bolt_waits_for_all_shards(self):
        bolt = ShardMergeBolt(n_shards=2, k=3)
        emitter = Emitter()
        tup = StreamTuple(values={"item_id": 1, "shard_id": 0, "partial": [(1, 2.0)]})
        bolt.process(tup, emitter)
        assert emitter.drain() == []
        tup2 = StreamTuple(values={"item_id": 1, "shard_id": 1, "partial": [(2, 3.0)]})
        bolt.process(tup2, emitter)
        out = emitter.drain()
        assert len(out) == 1
        assert out[0]["recommendations"] == [(2, 3.0), (1, 2.0)]
        bolt.cleanup()  # no leftovers

    def test_merge_bolt_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardMergeBolt(0, 5)


class TestEngineReportPercentiles:
    def test_percentiles_from_latencies(self):
        from repro.stream.engine import EngineReport

        report = EngineReport()
        report.item_latencies.extend([0.001 * i for i in range(1, 101)])
        assert report.p50_latency == pytest.approx(0.0505, rel=1e-6)
        assert report.p95_latency >= report.p50_latency
        assert report.p99_latency >= report.p95_latency

    def test_empty_report(self):
        from repro.stream.engine import EngineReport

        report = EngineReport()
        assert report.p50_latency == 0.0
        assert report.p95_latency == 0.0
        assert report.p99_latency == 0.0
