"""Native scoring kernels: logic, availability gate, fallback, agreement.

numba is optional, so these tests are written to pass on both CI legs of
the kernel matrix: where the extra is missing the kernels run as plain
Python through the no-op ``njit`` stand-in, and the fallback tests force
determinism with ``REPRO_NATIVE=0`` so they hold even where numba *is*
installed.  The agreement tests exercise :class:`NativeEngine` directly
(kernel logic is identical compiled or interpreted; only speed differs).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.kernels import (
    NativeEngine,
    _fused_scores,
    _topk_select,
    _worse,
)
from repro.exec.ops import NativeCppseKnnOp, NativeTopKOp, PreRankedSelectOp
from repro.hmm.utils import PROB_FLOOR


@pytest.fixture(autouse=True)
def _isolated_kernel_state():
    """Save/restore the module-level readiness cache and fallback counters
    so these tests neither observe nor leak cross-test state."""
    saved = (kernels._ready, kernels._fallbacks, kernels._warned)
    yield
    kernels._ready, kernels._fallbacks, kernels._warned = saved


def _assert_same_ranking(got, want, *, atol=1e-9):
    """Same users in the same order, scores within the tie tolerance."""
    assert [u for u, _ in got] == [u for u, _ in want]
    for (_, s_got), (_, s_want) in zip(got, want):
        assert s_got == pytest.approx(s_want, rel=0.0, abs=atol)


# ----------------------------------------------------------------------
# Selection kernel logic
# ----------------------------------------------------------------------
class TestTopKSelect:
    def _reference(self, scores, user_ids, k):
        order = sorted(range(len(scores)), key=lambda r: (-scores[r], user_ids[r]))
        return order[: min(k, len(scores))]

    def test_k_zero_selects_nothing(self):
        scores = np.array([3.0, 1.0, 2.0])
        uids = np.array([10, 11, 12], dtype=np.int64)
        out_idx = np.empty(0, dtype=np.int64)
        assert _topk_select(scores, uids, 0, out_idx) == 0

    def test_k_larger_than_n_returns_all_sorted(self):
        scores = np.array([1.0, 3.0, 2.0])
        uids = np.array([10, 11, 12], dtype=np.int64)
        out_idx = np.empty(3, dtype=np.int64)
        count = _topk_select(scores, uids, 50, out_idx)
        assert count == 3
        assert list(out_idx) == self._reference(scores, uids, 50)

    def test_ties_break_on_user_id_not_position(self):
        scores = np.array([1.0, 1.0, 1.0, 1.0])
        uids = np.array([40, 20, 30, 10], dtype=np.int64)
        out_idx = np.empty(2, dtype=np.int64)
        count = _topk_select(scores, uids, 2, out_idx)
        assert count == 2
        assert [int(uids[i]) for i in out_idx] == [10, 20]

    def test_worse_orders_by_score_then_user_id(self):
        scores = np.array([2.0, 1.0, 2.0])
        uids = np.array([5, 6, 3], dtype=np.int64)
        assert _worse(scores, uids, 1, 0)       # lower score loses
        assert not _worse(scores, uids, 0, 1)
        assert _worse(scores, uids, 0, 2)       # equal score: higher uid loses
        assert not _worse(scores, uids, 2, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=45),
    )
    def test_matches_sorted_reference(self, seed, n, k):
        rng = np.random.default_rng(seed)
        # Coarse quantization manufactures plenty of exact score ties.
        scores = rng.integers(0, 5, size=n).astype(np.float64)
        uids = rng.permutation(n).astype(np.int64) + 100
        out_idx = np.empty(max(k, 1), dtype=np.int64)
        count = _topk_select(scores, uids, k, out_idx)
        want = self._reference(scores, uids, k)
        assert count == len(want)
        assert list(out_idx[:count]) == want


# ----------------------------------------------------------------------
# Scoring kernel vs. NumPy reference (the matcher's arithmetic)
# ----------------------------------------------------------------------
class TestFusedScores:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=7),   # users
        st.integers(min_value=1, max_value=4),   # categories
        st.integers(min_value=1, max_value=5),   # producers
        st.integers(min_value=1, max_value=6),   # entities in the universe
        st.integers(min_value=0, max_value=4),   # entities in the query
    )
    def test_matches_numpy_reference(self, seed, n_users, n_cats, n_prods, n_ents, q_ents):
        rng = np.random.default_rng(seed)
        long_dist = rng.random((n_users, n_cats))
        short_dist = rng.random((n_users, n_cats))
        producer_counts = rng.integers(0, 6, size=(n_users, n_prods)).astype(np.float64)
        entity_counts = rng.integers(0, 6, size=(n_users, n_ents)).astype(np.float64)
        n_long = producer_counts.sum(axis=1)
        n_tokens = entity_counts.sum(axis=1)
        category = int(rng.integers(n_cats))
        producer = int(rng.integers(n_prods))
        ent_idx = rng.integers(0, n_ents, size=q_ents).astype(np.int64)
        ent_w = rng.uniform(0.01, 2.0, size=q_ents)
        mu, lam = float(rng.uniform(0.5, 20.0)), float(rng.uniform(0.0, 1.0))
        rows = np.arange(n_users, dtype=np.int64)
        out = np.empty(n_users)
        _fused_scores(
            category, producer, ent_idx, ent_w, 0, q_ents, rows,
            producer_counts, entity_counts, n_long, n_tokens, long_dist,
            short_dist, mu, n_prods, n_ents, PROB_FLOOR, lam, out,
        )
        p_long = np.maximum(long_dist[:, category], PROB_FLOOR)
        p_short = np.maximum(short_dist[:, category], PROB_FLOOR)
        p_prod = (producer_counts[:, producer] + mu / n_prods) / (n_long + mu)
        esum = np.zeros(n_users)
        for j in range(q_ents):
            esum += ent_w[j] * (entity_counts[:, ent_idx[j]] + mu / n_ents) / (n_tokens + mu)
        r_long = (
            np.log(p_long)
            + np.log(np.maximum(p_prod, PROB_FLOOR))
            + np.log(np.maximum(esum, PROB_FLOOR))
        )
        want = (1.0 - lam) * r_long + lam * np.log(p_short)
        np.testing.assert_allclose(out, want, rtol=0.0, atol=1e-9)


# ----------------------------------------------------------------------
# Availability gate, warning discipline, telemetry
# ----------------------------------------------------------------------
class TestAvailabilityGate:
    def test_env_kill_switch_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        kernels._reset_native_state()
        assert kernels.native_ready() is False
        # The kill switch must not poison the cache for when it is lifted.
        assert kernels._ready is None

    @pytest.mark.skipif(kernels.NUMBA_AVAILABLE, reason="numba installed")
    def test_not_ready_without_numba(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        kernels._reset_native_state()
        assert kernels.native_ready() is False

    @pytest.mark.skipif(not kernels.NUMBA_AVAILABLE, reason="numba missing")
    def test_self_test_passes_with_numba(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        kernels._reset_native_state()
        assert kernels.native_ready() is True

    def test_self_test_accepts_plain_python_kernels(self):
        # The reference comparison inside the probe must hold however the
        # kernels execute; without numba we can run it directly.
        assert kernels._self_test() is True

    def test_record_fallback_warns_exactly_once(self):
        kernels._reset_native_state()
        assert kernels.fallback_count() == 0
        with pytest.warns(RuntimeWarning, match="scan-item-native"):
            kernels.record_fallback("scan-item-native")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            kernels.record_fallback("index-item-native")
        assert kernels.fallback_count() == 2

    def test_obs_registry_reports_readiness_and_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        kernels._reset_native_state()
        with pytest.warns(RuntimeWarning):
            kernels.record_fallback("scan-item-native")
        kernels.record_fallback("scan-batch-native")
        registry = kernels.obs_registry()
        assert registry.gauge("native.ready").value == 0.0
        assert registry.counter("native.fallbacks").value == 2


# ----------------------------------------------------------------------
# Fallback serving: native plan, kernels unavailable
# ----------------------------------------------------------------------
class TestFallbackServing:
    def test_set_scoring_rejects_unknown_backend(self, fresh_ssrec):
        with pytest.raises(ValueError, match="scoring"):
            fresh_ssrec.set_scoring("gpu")

    def test_fallback_is_bit_identical_and_counted(
        self, fresh_ssrec, ytube_small, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        kernels._reset_native_state()
        items = ytube_small.items[:6]
        expected_item = fresh_ssrec.recommend(items[0], 10)
        expected_batch = fresh_ssrec.recommend_batch(items, 10)

        fresh_ssrec.set_scoring("native")
        with pytest.warns(RuntimeWarning, match="vectorized path"):
            got_item = fresh_ssrec.recommend(items[0], 10)
        assert got_item == expected_item  # bit-identical, not just close
        assert fresh_ssrec.recommend_batch(items, 10) == expected_batch
        assert kernels.fallback_count() >= 1
        assert kernels.obs_registry().gauge("native.ready").value == 0.0

    def test_fallback_plan_compiles_vectorized_ops(self, fresh_ssrec, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        kernels._reset_native_state()
        fresh_ssrec.set_scoring("native")
        with pytest.warns(RuntimeWarning):
            compiled = fresh_ssrec.executor()
        assert compiled.plan.name == "scan-item-native"
        op_types = {type(op) for op in compiled.ops}
        assert NativeTopKOp not in op_types
        assert NativeCppseKnnOp not in op_types


# ----------------------------------------------------------------------
# NativeEngine vs. the machinery it accelerates (plain-Python kernels)
# ----------------------------------------------------------------------
class TestNativeEngineScan:
    def test_rejects_negative_k(self, fitted_ssrec):
        engine = NativeEngine(fitted_ssrec.matcher)
        with pytest.raises(ValueError, match="k must be"):
            engine.top_k_batch([], -1)

    @pytest.mark.parametrize("k", [0, 1, 5, 50])
    def test_top_k_matches_matcher(self, fitted_ssrec, ytube_small, k):
        engine = NativeEngine(fitted_ssrec.matcher)
        for item in ytube_small.items[:4]:
            _assert_same_ranking(
                engine.top_k(item, k), fitted_ssrec.matcher.top_k(item, k)
            )

    def test_top_k_batch_matches_matcher(self, fitted_ssrec, ytube_small):
        engine = NativeEngine(fitted_ssrec.matcher)
        items = ytube_small.items[:8]
        got = engine.top_k_batch(items, 7)
        want = fitted_ssrec.matcher.top_k_batch(items, 7)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            _assert_same_ranking(g, w)


class TestNativeEngineIndex:
    @pytest.mark.parametrize("k", [0, 1, 5, 50])
    def test_knn_matches_index(self, fitted_ssrec_indexed, ytube_small, k):
        rec = fitted_ssrec_indexed
        engine = NativeEngine(rec.matcher, rec.index)
        for item in ytube_small.items[:4]:
            _assert_same_ranking(engine.knn(item, k), rec.index.knn(item, k))

    def test_knn_batch_matches_index(self, fitted_ssrec_indexed, ytube_small):
        rec = fitted_ssrec_indexed
        engine = NativeEngine(rec.matcher, rec.index)
        items = ytube_small.items[:8]
        got = engine.knn_batch(items, 7)
        want = rec.index.knn_batch(items, 7)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            _assert_same_ranking(g, w)


# ----------------------------------------------------------------------
# Forced-native plan compilation and serving
# ----------------------------------------------------------------------
class TestForcedNativeServing:
    """Force ``native_ready()`` True so plan compilation takes the native
    branch; without numba the kernels execute as plain Python, which
    keeps these end-to-end checks meaningful on every matrix leg."""

    @pytest.fixture(autouse=True)
    def _force_ready(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setattr(kernels, "_ready", True)

    def test_scan_plan_compiles_native_ops(self, fresh_ssrec, ytube_small):
        fresh_ssrec.set_scoring("native")
        compiled = fresh_ssrec.executor()
        assert compiled.plan.name == "scan-item-native"
        op_types = [type(op) for op in compiled.ops]
        assert NativeTopKOp in op_types
        assert PreRankedSelectOp in op_types
        vectorized = fresh_ssrec.set_scoring("vectorized").recommend(
            ytube_small.items[0], 10
        )
        native = fresh_ssrec.set_scoring("native").recommend(ytube_small.items[0], 10)
        _assert_same_ranking(native, vectorized)

    def test_index_plan_compiles_native_ops(self, fresh_ssrec_indexed, ytube_small):
        rec = fresh_ssrec_indexed
        rec.set_scoring("native")
        compiled = rec.executor()
        assert compiled.plan.name == "index-item-native"
        assert NativeCppseKnnOp in [type(op) for op in compiled.ops]
        items = ytube_small.items[:5]
        vectorized = rec.set_scoring("vectorized").recommend_batch(items, 10)
        native = rec.set_scoring("native").recommend_batch(items, 10)
        for g, w in zip(native, vectorized):
            _assert_same_ranking(g, w)

    def test_no_fallback_recorded_when_ready(self, fresh_ssrec, ytube_small):
        before = kernels.fallback_count()
        fresh_ssrec.set_scoring("native")
        fresh_ssrec.recommend(ytube_small.items[0], 5)
        assert kernels.fallback_count() == before
