"""Cross-cutting property-based tests (hypothesis) on core invariants.

Each class targets one load-bearing contract of the system with randomized
inputs: hash-table behaviour against a dict model, query-signature
linearity, partition-protocol conservation laws, and synthesizer support
constraints.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.schema import Dataset, Interaction, SocialItem
from repro.datasets.partitions import partition_interactions
from repro.datasets.synthpop import SynthpopSynthesizer
from repro.core.config import SsRecConfig
from repro.exec import PLAN_REGISTRY
from repro.exec.cache import ResultCache
from repro.index.hashing import ChainedHashTable
from repro.index.signature import BlockUniverse, QuerySignature
from repro.serve.sharding import merge_top_k
from repro.serve.shmem import ShardPublisher, attach_state, publish_state


class TestHashTableModel:
    """The chained hash table must behave exactly like a dict keyed by
    (category, entity) regardless of bucket pressure."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),    # category
                st.integers(min_value=0, max_value=30),   # entity
                st.integers(min_value=0, max_value=3),    # block
            ),
            min_size=0,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=8),            # bucket count
    )
    def test_matches_dict_model(self, operations, n_buckets):
        table = ChainedHashTable(n_buckets=n_buckets)
        model: dict[tuple[int, int], dict[int, str]] = {}
        for category, entity, block in operations:
            tree = f"tree-{category}-{entity}-{block}"
            table.insert(category, entity, block, tree)
            model.setdefault((category, entity), {})[block] = tree
        for (category, entity), expected in model.items():
            assert table.lookup(category, entity) == expected
        assert len(table) == len(model)
        assert sum(table.chain_lengths()) == len(model)


class TestQuerySignatureLinearity:
    """entity_sum must be linear in the weights and in the impact list."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.floats(min_value=0.01, max_value=2.0),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_scaling_weights_scales_sum(self, weighted):
        universe = BlockUniverse([0], range(10), slack=0.2)
        item = SocialItem(0, 0, 0, (), "", 0.0)
        rng = np.random.default_rng(0)
        p_entity = rng.random(universe.entity_capacity)
        floor = 0.001
        single = QuerySignature.encode(item, weighted, universe, 0)
        doubled = QuerySignature.encode(
            item, [(e, 2 * w) for e, w in weighted], universe, 0
        )
        assert doubled.entity_sum(p_entity, floor) == pytest.approx(
            2 * single.entity_sum(p_entity, floor)
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=50))
    def test_out_of_universe_entities_hit_the_floor(self, entity):
        universe = BlockUniverse([0], range(10), slack=0.0)
        item = SocialItem(0, 0, 0, (), "", 0.0)
        query = QuerySignature.encode(item, [(entity, 1.0)], universe, 0)
        p_entity = np.full(universe.entity_capacity, 0.7)
        value = query.entity_sum(p_entity, floor_entity=0.001)
        if universe.entity_slot(entity) is None:
            assert value == pytest.approx(0.001)
        else:
            assert value == pytest.approx(0.7)


def _dataset_from_times(times):
    items = [SocialItem(0, 0, 0, (), "", 0.0)]
    interactions = [
        Interaction(user_id=1, item_id=0, category=0, producer=0, timestamp=t)
        for t in times
    ]
    return Dataset(
        name="prop",
        n_categories=1,
        items=items,
        interactions=interactions,
        entity_names=[],
        producer_ids=[0],
        consumer_ids=[1],
    )


class TestPartitionConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=6,
            max_size=120,
        ),
        st.integers(min_value=2, max_value=6),
    )
    def test_every_interaction_in_exactly_one_partition(self, times, n_partitions):
        dataset = _dataset_from_times(times)
        stream = partition_interactions(dataset, n_partitions=n_partitions, n_train=1)
        total = sum(len(p) for p in stream.partitions)
        assert total == len(times)
        # Partitions ordered, near-even, and globally time-sorted.
        sizes = [len(p) for p in stream.partitions]
        assert max(sizes) - min(sizes) <= len(times)  # sanity
        flattened = [i.timestamp for p in stream.partitions for i in p]
        assert flattened == sorted(flattened)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=10,
            max_size=60,
        )
    )
    def test_protocol_steps_monotone_training_growth(self, times):
        dataset = _dataset_from_times(times)
        stream = partition_interactions(dataset, n_partitions=5, n_train=2)
        steps = stream.protocol_steps()
        for (train_a, test_a), (train_b, test_b) in zip(steps, steps[1:]):
            assert test_b == test_a + 1
            assert train_b[: len(train_a)] == train_a


#: Scores drawn from a small pool on purpose: collisions across users and
#: shards must be common so the (-score, user_id) tie-break carries real
#: weight in every example.
_COLLIDING_SCORES = st.one_of(
    st.sampled_from([-2.0, -1.0, -0.5, 0.0, 0.25, 0.25, 1.0]),
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)


class TestMergeTopKTieBreaking:
    """Merged sharded order must equal the global (-score, user_id) sort
    for arbitrary partitions and arbitrary score collisions."""

    @settings(max_examples=80, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=80),   # user id (deduped)
                _COLLIDING_SCORES,                         # score
                st.integers(min_value=0, max_value=4),    # owning shard
            ),
            max_size=60,
        ),
        k=st.integers(min_value=0, max_value=12),
    )
    def test_merge_equals_global_sort(self, entries, k):
        population: dict[int, tuple[float, int]] = {}
        for user_id, score, shard in entries:
            population.setdefault(user_id, (score, shard))
        per_shard: dict[int, list[tuple[int, float]]] = {}
        for user_id, (score, shard) in population.items():
            per_shard.setdefault(shard, []).append((user_id, score))
        # Each shard contributes its exact local top-k, the contract the
        # matcher and the CPPse-index both honour.
        shard_lists = [
            sorted(ranked, key=lambda pair: (-pair[1], pair[0]))[:k]
            for ranked in per_shard.values()
        ]
        merged = merge_top_k(shard_lists, k)
        global_rank = sorted(
            ((uid, score) for uid, (score, _) in population.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )[:k]
        assert merged == global_rank

    @settings(max_examples=40, deadline=None)
    @given(
        user_ids=st.lists(
            st.integers(min_value=0, max_value=200), min_size=1, max_size=40, unique=True
        ),
        k=st.integers(min_value=1, max_value=10),
        n_shards=st.integers(min_value=1, max_value=5),
    )
    def test_all_tied_scores_rank_by_user_id(self, user_ids, k, n_shards):
        """Total score collision: the merge must fall back to pure
        ascending-user-id order, whatever the partition."""
        shard_lists = [[] for _ in range(n_shards)]
        for uid in user_ids:
            shard_lists[uid % n_shards].append((uid, 0.125))
        shard_lists = [
            sorted(ranked, key=lambda pair: (-pair[1], pair[0]))[:k]
            for ranked in shard_lists
        ]
        merged = merge_top_k(shard_lists, k)
        assert merged == [(uid, 0.125) for uid in sorted(user_ids)[:k]]


class TestSynthesizerSupport:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_samples_stay_within_observed_support(self, rows):
        """The synthesizer can only emit values it saw during fit."""
        records = [{"a": a, "b": b} for a, b in rows]
        synth = SynthpopSynthesizer(["a", "b"], max_context=1).fit(records)
        seen_a = {r["a"] for r in records}
        seen_b = {r["b"] for r in records}
        for sample in synth.sample(30, seed=1):
            assert sample["a"] in seen_a
            assert sample["b"] in seen_b

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_int_seed_and_generator_seed_agree(self, rows, seed):
        """An explicit Generator threads through sample() identically to
        the int seed it was built from (the one-seed reproducibility
        contract of the simulator and the bench harness)."""
        records = [{"a": a, "b": b} for a, b in rows]
        synth = SynthpopSynthesizer(["a", "b"], max_context=1).fit(records)
        assert synth.sample(10, seed=seed) == synth.sample(
            10, seed=np.random.default_rng(seed)
        )


class TestPlanRegistryRoundTrip:
    """Every registered, config-derivable plan survives the config
    serialization round trip: applying the plan's config overrides,
    serializing through ``to_dict``/``from_dict`` and re-deriving from the
    registry must land on the very same plan name (the contract snapshots
    and experiment manifests rely on)."""

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(PLAN_REGISTRY.names()))
    def test_config_round_trip_rederives_plan(self, name):
        plan = PLAN_REGISTRY.get(name)
        if not plan.config_derivable:  # oracle plans have no config spelling
            return
        config = SsRecConfig().with_options(**plan.config_overrides())
        restored = SsRecConfig.from_dict(config.to_dict())
        assert restored == config
        derived = PLAN_REGISTRY.for_config(
            restored, use_index=plan.uses_index, batching=plan.batching
        )
        assert derived.name == plan.name
        assert derived.axes() == plan.axes()


class TestResultCacheEpochInvalidation:
    """Cache hits never survive an epoch bump: whatever sequence of
    stores and epoch advances happens, a key minted at the current epoch
    can only hit entries stored at that same epoch — the invariant that
    makes Algorithm-2 maintenance flushes (and profile updates, which
    both bump the facade epoch) wipe the cached plans' memo."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),   # item id served
                st.booleans(),                           # flush after serving?
            ),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=8),           # cache capacity
    )
    def test_hits_never_survive_a_flush(self, events, capacity):
        cache = ResultCache(max_entries=capacity)
        epoch = 0
        stored_epoch: dict[int, int] = {}  # item id -> epoch last stored at
        for item_id, flush in events:
            item = SocialItem(
                item_id=item_id, category=0, producer=0,
                entities=(1,), text="", timestamp=0.0,
            )
            key = cache.key(item, 5, epoch)
            hit = cache.lookup(key)
            if hit is not None:
                # A hit is only legal when the entry was stored in the
                # *current* epoch, i.e. no flush intervened.
                assert stored_epoch.get(item_id) == epoch
                assert hit == [(item_id, 0.0)]
            else:
                cache.store(key, [(item_id, 0.0)])
                stored_epoch[item_id] = epoch
            if flush:
                epoch += 1  # what run_maintenance()/update() do

    def test_facade_flush_invalidates_end_to_end(self, fresh_ssrec_indexed, ytube_small):
        """The non-randomized end of the same contract, through the real
        facade: a maintenance flush orphans every cached entry."""
        rec = fresh_ssrec_indexed.enable_result_cache()
        item = ytube_small.items[0]
        rec.recommend(item, 5)
        rec.recommend(item, 5)
        assert rec.result_cache_stats()["hits"] == 1
        rec.run_maintenance()
        rec.recommend(item, 5)
        assert rec.result_cache_stats()["hits"] == 1  # no new hit after flush
        assert rec.result_cache_stats()["misses"] == 2


_SHMEM_DTYPES = st.sampled_from(
    ["float64", "float32", "int64", "int32", "uint16", "uint8", "bool"]
)


@st.composite
def _shmem_states(draw):
    """A pickleable state graph mixing scalars with numpy arrays of drawn
    dtypes and shapes (including empty arrays and 2-D layouts)."""
    state = {"tag": draw(st.integers(min_value=0, max_value=10_000))}
    for i in range(draw(st.integers(min_value=1, max_value=4))):
        dtype = np.dtype(draw(_SHMEM_DTYPES))
        shape = tuple(
            draw(st.lists(st.integers(min_value=0, max_value=7),
                          min_size=1, max_size=2))
        )
        rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31 - 1)))
        if dtype.kind == "f":
            array = rng.standard_normal(shape).astype(dtype)
        elif dtype.kind == "b":
            array = rng.random(shape) < 0.5
        else:
            array = rng.integers(0, 200, size=shape).astype(dtype)
        state[f"arr{i}"] = array
    return state


class TestShmemPublishRoundTrip:
    """publish_state/attach_state is a bitwise-faithful, zero-copy codec:
    whatever array dtypes and shapes go in, byte-identical read-only
    views come out of the mapped segment."""

    @staticmethod
    def _assert_bitwise(attached, original):
        assert set(attached) == set(original)
        for key, value in original.items():
            got = attached[key]
            if isinstance(value, np.ndarray):
                assert got.dtype == value.dtype and got.shape == value.shape
                assert got.tobytes() == value.tobytes()
                if got.nbytes:
                    assert not got.flags.owndata      # aliases the segment
                    assert not got.flags.writeable    # torn-write protection
            else:
                assert got == value

    @settings(max_examples=25, deadline=None)
    @given(state=_shmem_states(), epoch=st.integers(min_value=1, max_value=10**6))
    def test_round_trip_bitwise_equal(self, state, epoch):
        manifest, shm = publish_state(state, epoch=epoch)
        try:
            attachment = attach_state(manifest)
            try:
                assert attachment.manifest == manifest
                self._assert_bitwise(attachment.state, state)
            finally:
                attachment.close()
        finally:
            shm.close()
            shm.unlink()

    def test_matcher_state_arrays_round_trip(self, fitted_ssrec):
        """The non-randomized end of the contract: the real matcher's
        live arrays survive the segment codec bit-for-bit."""
        state = dict(fitted_ssrec.matcher.state_arrays())
        manifest, shm = publish_state(state, epoch=1)
        try:
            attachment = attach_state(manifest)
            try:
                self._assert_bitwise(attachment.state, state)
            finally:
                attachment.close()
        finally:
            shm.close()
            shm.unlink()


class TestShmemEpochProtocol:
    """Interleaved publishes across shards: per-shard epochs are strictly
    monotone, and a reader attached to the previous epoch still sees its
    complete old state after a republish retires the segment under it —
    copy-on-publish means no torn reads, ever."""

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),          # shard id
                st.integers(min_value=0, max_value=2**31 - 1),  # state seed
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_monotone_epochs_and_no_torn_reads(self, ops):
        publisher = ShardPublisher()
        held: dict[int, tuple[object, np.ndarray]] = {}  # shard -> (attachment, copy)
        try:
            last_epoch: dict[int, int] = {}
            for shard_id, seed in ops:
                array = np.random.default_rng(seed).standard_normal(8)
                manifest = publisher.publish(shard_id, {"arr": array})
                assert manifest.epoch == last_epoch.get(shard_id, 0) + 1
                assert publisher.epoch(shard_id) == manifest.epoch
                last_epoch[shard_id] = manifest.epoch
                if shard_id in held:
                    # The republish above just retired (unlinked) the
                    # segment this attachment maps — its view must still
                    # read the complete pre-republish bits.
                    old_attachment, old_copy = held.pop(shard_id)
                    assert np.array_equal(old_attachment.state["arr"], old_copy)
                    old_attachment.close()
                attachment = attach_state(manifest)
                assert attachment.state["arr"].tobytes() == array.tobytes()
                held[shard_id] = (attachment, array.copy())
        finally:
            for attachment, _ in held.values():
                attachment.close()
            publisher.close()


class TestHistogramMergeAlgebra:
    """LatencyHistogram.merge must be a commutative monoid on equal-bounds
    histograms: aggregation order across shards, worker processes and the
    wire cannot change the merged answer.  Bucket counts and extrema are
    exact; the running float sum is order-sensitive only in its last ulp.
    """

    samples = st.lists(
        st.floats(min_value=1e-7, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=0,
        max_size=30,
    )

    @staticmethod
    def _histogram(values):
        from repro.obs import LatencyHistogram

        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        return hist

    @staticmethod
    def _exact_parts(hist):
        return (hist.counts, hist.count, hist.min, hist.max)

    @settings(max_examples=60, deadline=None)
    @given(samples, samples)
    def test_commutative(self, left_samples, right_samples):
        ab = self._histogram(left_samples).merge(self._histogram(right_samples))
        ba = self._histogram(right_samples).merge(self._histogram(left_samples))
        assert self._exact_parts(ab) == self._exact_parts(ba)
        assert ab.sum == pytest.approx(ba.sum)

    @settings(max_examples=60, deadline=None)
    @given(samples, samples, samples)
    def test_associative(self, a, b, c):
        left = self._histogram(a).merge(
            self._histogram(b).merge(self._histogram(c))
        )
        right = self._histogram(a).merge(self._histogram(b)).merge(
            self._histogram(c)
        )
        assert self._exact_parts(left) == self._exact_parts(right)
        assert left.sum == pytest.approx(right.sum)

    @settings(max_examples=40, deadline=None)
    @given(samples)
    def test_empty_is_identity(self, values):
        from repro.obs import LatencyHistogram

        hist = self._histogram(values)
        merged = self._histogram(values).merge(LatencyHistogram())
        assert self._exact_parts(merged) == self._exact_parts(hist)
        assert merged.sum == hist.sum

    @settings(max_examples=40, deadline=None)
    @given(samples, samples)
    def test_registry_merge_round_trips_the_wire_shape(self, left_samples, right_samples):
        """Dump -> from_dict -> merge equals in-process merge: what shard
        workers ship over the reply queue loses nothing."""
        from repro.obs import MetricsRegistry

        def registry(values, shard):
            reg = MetricsRegistry()
            reg.counter("shard.queries", shard=shard).inc(len(values))
            for value in values:
                reg.histogram("shard.item_seconds", shard=shard).record(value)
            return reg

        direct = registry(left_samples, "0").merge(registry(right_samples, "1"))
        shipped = MetricsRegistry.from_dict(registry(left_samples, "0").to_dict())
        shipped.merge(MetricsRegistry.from_dict(registry(right_samples, "1").to_dict()))
        assert shipped.to_dict() == direct.to_dict()
