"""Tests for the Storm-like stream substrate."""

import pytest

from repro.entities.extractor import EntityExtractor
from repro.stream.batch_topology import MicroBatchBolt, build_batch_recommend_topology
from repro.stream.engine import LocalEngine
from repro.stream.recommend_topology import build_recommendation_topology
from repro.stream.topology import Bolt, Emitter, Grouping, Spout, TopologyBuilder
from repro.stream.tuples import StreamTuple


class ListSpout(Spout):
    def __init__(self, rows):
        self.rows = list(rows)
        self.i = 0

    def open(self):
        self.i = 0

    def next_tuple(self):
        if self.i >= len(self.rows):
            return None
        row = self.rows[self.i]
        self.i += 1
        return StreamTuple(values=row)


class SplitBolt(Bolt):
    def process(self, tup, emitter):
        for word in tup["line"].split():
            emitter.emit(tup.with_values("", word=word))


class CountBolt(Bolt):
    def __init__(self):
        self.counts = {}
        self.task_index = None

    def prepare(self, task_index, n_tasks):
        self.task_index = task_index

    def process(self, tup, emitter):
        word = tup["word"]
        self.counts[word] = self.counts.get(word, 0) + 1


class TestStreamTuple:
    def test_field_access(self):
        tup = StreamTuple(values={"a": 1})
        assert tup["a"] == 1
        assert tup.get("b", 9) == 9
        assert "a" in tup and "b" not in tup

    def test_with_values_copies(self):
        tup = StreamTuple(values={"a": 1}, timestamp=3.0)
        out = tup.with_values("src", b=2)
        assert out["a"] == 1 and out["b"] == 2
        assert out.timestamp == 3.0
        assert "b" not in tup


class TestTopologyBuilder:
    def test_duplicate_names_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("s", ListSpout([]))
        with pytest.raises(ValueError, match="already used"):
            builder.set_spout("s", ListSpout([]))

    def test_unknown_source_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("s", ListSpout([]))
        builder.set_bolt("b", CountBolt).shuffle_grouping("ghost")
        with pytest.raises(ValueError, match="unknown component"):
            builder.build()

    def test_bolt_without_grouping_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("s", ListSpout([]))
        builder.set_bolt("b", CountBolt)
        with pytest.raises(ValueError, match="no input grouping"):
            builder.build()

    def test_cycle_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("s", ListSpout([]))
        builder.set_bolt("a", CountBolt).shuffle_grouping("b")
        builder.set_bolt("b", CountBolt).shuffle_grouping("a")
        with pytest.raises(ValueError, match="cycle"):
            builder.build()

    def test_invalid_parallelism_rejected(self):
        builder = TopologyBuilder()
        with pytest.raises(ValueError, match="parallelism"):
            builder.set_bolt("b", CountBolt, parallelism=0)

    def test_fields_grouping_requires_fields(self):
        builder = TopologyBuilder()
        builder.set_spout("s", ListSpout([]))
        spec = builder.set_bolt("b", CountBolt)
        with pytest.raises(ValueError, match="at least one field"):
            spec.fields_grouping("s")


class TestGroupingRouting:
    def test_shuffle_round_robins(self):
        g = Grouping(source="s", kind="shuffle")
        tup = StreamTuple(values={})
        assert [g.route(tup, 3, i) for i in range(6)] == [[0], [1], [2], [0], [1], [2]]

    def test_fields_grouping_is_consistent(self):
        g = Grouping(source="s", kind="fields", fields=("k",))
        a = StreamTuple(values={"k": "x"})
        b = StreamTuple(values={"k": "x"})
        assert g.route(a, 5, 0) == g.route(b, 5, 99)

    def test_global_grouping_always_task_zero(self):
        g = Grouping(source="s", kind="global")
        assert g.route(StreamTuple(values={"k": 1}), 7, 3) == [0]

    def test_all_grouping_broadcasts(self):
        g = Grouping(source="s", kind="all")
        assert g.route(StreamTuple(values={}), 4, 2) == [0, 1, 2, 3]

    def test_unknown_kind_rejected(self):
        g = Grouping(source="s", kind="bogus")
        with pytest.raises(ValueError):
            g.route(StreamTuple(values={}), 2, 0)


class TestLocalEngine:
    def _wordcount(self, parallelism=1):
        builder = TopologyBuilder()
        builder.set_spout("lines", ListSpout([{"line": "a b a"}, {"line": "b a"}]))
        builder.set_bolt("split", SplitBolt).shuffle_grouping("lines")
        builder.set_bolt("count", CountBolt, parallelism=parallelism).fields_grouping(
            "split", "word"
        )
        return builder.build()

    def test_wordcount_end_to_end(self):
        topology = self._wordcount()
        engine = LocalEngine(topology)
        report = engine.run()
        counter = engine.task_instances("count")[0]
        assert counter.counts == {"a": 3, "b": 2}
        assert report.tuples_emitted["lines"] == 2
        assert report.tuples_processed["split"] == 2
        assert report.tuples_processed["count"] == 5
        assert len(report.item_latencies) == 2

    def test_fields_grouping_partitions_state(self):
        topology = self._wordcount(parallelism=3)
        engine = LocalEngine(topology)
        engine.run()
        merged = {}
        per_word_tasks = {}
        for idx, bolt in enumerate(engine.task_instances("count")):
            for word, count in bolt.counts.items():
                merged[word] = merged.get(word, 0) + count
                per_word_tasks.setdefault(word, set()).add(idx)
        assert merged == {"a": 3, "b": 2}
        # Every word was handled by exactly one task.
        assert all(len(tasks) == 1 for tasks in per_word_tasks.values())

    def test_max_tuples_limits_spout(self):
        engine = LocalEngine(self._wordcount())
        report = engine.run(max_tuples=1)
        assert report.tuples_emitted["lines"] == 1

    def test_engine_report_mean_latency(self):
        engine = LocalEngine(self._wordcount())
        report = engine.run()
        assert report.mean_latency > 0
        assert report.total_seconds == pytest.approx(sum(report.item_latencies))


class TestRecommendationTopology:
    class DummyRecommender:
        def __init__(self):
            self.calls = []

        def recommend(self, item, k):
            self.calls.append(item.item_id)
            return [(1, 0.5)][:k]

    def test_end_to_end_collects_results(self, ytube_small):
        extractor = EntityExtractor()
        extractor.add_phrases(ytube_small.entity_names)
        recommender = self.DummyRecommender()
        items = ytube_small.items[:10]
        topology, sink = build_recommendation_topology(
            items, extractor, recommender, n_categories=ytube_small.n_categories, k=5
        )
        LocalEngine(topology).run()
        assert set(sink.results) == {it.item_id for it in items}
        assert recommender.calls and all(r == [(1, 0.5)] for r in sink.results.values())

    def test_extract_bolt_recovers_entities(self, ytube_small):
        extractor = EntityExtractor()
        extractor.add_phrases(ytube_small.entity_names)

        seen = {}

        class CapturingRecommender:
            def recommend(self, item, k):
                seen[item.item_id] = item.entities
                return []

        items = ytube_small.items[:5]
        topology, _ = build_recommendation_topology(
            items, extractor, CapturingRecommender(), ytube_small.n_categories
        )
        LocalEngine(topology).run()
        for item in items:
            # The extractor recovers the embedded phrases (set equality; the
            # generator may repeat a mention).
            assert set(seen[item.item_id]) == set(item.entities)

    def test_invalid_category_count_rejected(self, ytube_small):
        with pytest.raises(ValueError):
            build_recommendation_topology([], EntityExtractor(), self.DummyRecommender(), 0)


class BufferingBolt(Bolt):
    """Test bolt: buffers everything, emits only on finish."""

    def __init__(self):
        self.buffer = []

    def process(self, tup, emitter):
        self.buffer.append(tup["word"])

    def finish(self, emitter):
        emitter.emit_values("", words=list(self.buffer))


class TestEngineFinish:
    def test_finish_emissions_flow_downstream(self):
        builder = TopologyBuilder()
        builder.set_spout("lines", ListSpout([{"line": "a b"}, {"line": "c"}]))
        builder.set_bolt("split", SplitBolt).shuffle_grouping("lines")
        buffering = BufferingBolt()
        builder.set_bolt("buffer", lambda: buffering).shuffle_grouping("split")
        sink = BufferingBolt()

        class CollectBolt(Bolt):
            def process(self, tup, emitter):
                sink.buffer.extend(tup["words"])

        builder.set_bolt("collect", CollectBolt).shuffle_grouping("buffer")
        report = LocalEngine(builder.build()).run()
        assert sorted(sink.buffer) == ["a", "b", "c"]
        assert report.tuples_emitted["buffer"] == 1
        assert report.tuples_processed["collect"] == 1


class TestMicroBatchBolt:
    def _tuple(self, item):
        return StreamTuple(values={"item": item, "category": item.category})

    def test_emits_full_windows_per_category(self, ytube_small):
        items = [it for it in ytube_small.items if it.category == 0][:4]
        bolt = MicroBatchBolt(batch_size=2)
        emitter = Emitter()
        for item in items:
            bolt.process(self._tuple(item), emitter)
        batches = emitter.drain()
        assert len(batches) == 2
        assert all(len(b["items"]) == 2 for b in batches)
        assert all(b["category"] == 0 for b in batches)

    def test_partial_window_flushes_on_finish(self, ytube_small):
        bolt = MicroBatchBolt(batch_size=10)
        emitter = Emitter()
        bolt.process(self._tuple(ytube_small.items[0]), emitter)
        assert emitter.drain() == []
        bolt.finish(emitter)
        (batch,) = emitter.drain()
        assert [it.item_id for it in batch["items"]] == [ytube_small.items[0].item_id]

    def test_windows_are_single_category(self, ytube_small):
        bolt = MicroBatchBolt(batch_size=3)
        emitter = Emitter()
        for item in ytube_small.items[:12]:
            bolt.process(self._tuple(item), emitter)
        bolt.finish(emitter)
        for batch in emitter.drain():
            categories = {it.category for it in batch["items"]}
            assert categories == {batch["category"]}

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            MicroBatchBolt(batch_size=0)


class TestBatchRecommendationTopology:
    class RecordingBatchRecommender:
        def __init__(self):
            self.window_sizes = []

        def recommend_batch(self, items, k):
            self.window_sizes.append(len(items))
            return [[(item.item_id % 7, 1.0)][:k] for item in items]

    def test_end_to_end_collects_all_items(self, ytube_small):
        extractor = EntityExtractor()
        extractor.add_phrases(ytube_small.entity_names)
        recommender = self.RecordingBatchRecommender()
        items = ytube_small.items[:20]
        topology, sink = build_batch_recommend_topology(
            items,
            extractor,
            recommender,
            n_categories=ytube_small.n_categories,
            k=5,
            batch_size=4,
        )
        LocalEngine(topology).run()
        assert set(sink.results) == {it.item_id for it in items}
        assert sum(recommender.window_sizes) == len(items)
        assert all(size <= 4 for size in recommender.window_sizes)
        # At least one real micro-batch formed (not all singleton flushes).
        assert max(recommender.window_sizes) > 1

    def test_matches_per_item_topology_with_ssrec(
        self, ytube_small, ytube_stream, fitted_ssrec
    ):
        extractor = EntityExtractor()
        extractor.add_phrases(ytube_small.entity_names)
        items = ytube_stream.items_in_partition(2)[:15]
        per_item_topology, per_item_sink = build_recommendation_topology(
            items, extractor, fitted_ssrec, ytube_small.n_categories, k=5
        )
        LocalEngine(per_item_topology).run()
        batch_topology, batch_sink = build_batch_recommend_topology(
            items, extractor, fitted_ssrec, ytube_small.n_categories, k=5, batch_size=4
        )
        LocalEngine(batch_topology).run()
        assert batch_sink.results == per_item_sink.results

    def test_invalid_category_count_rejected(self):
        with pytest.raises(ValueError):
            build_batch_recommend_topology(
                [], EntityExtractor(), self.RecordingBatchRecommender(), 0
            )

    def test_window_size_defaults_to_recommender_config(self, fitted_ssrec):
        topology, _ = build_batch_recommend_topology(
            [], EntityExtractor(), fitted_ssrec, n_categories=2
        )
        batcher = topology.bolts["batcher"].factory()
        assert batcher._batch_size == fitted_ssrec.config.batch_size

        topology, _ = build_batch_recommend_topology(
            [], EntityExtractor(), self.RecordingBatchRecommender(), n_categories=2
        )
        assert topology.bolts["batcher"].factory()._batch_size == 64
