"""Unit and property tests for repro.hmm.utils."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hmm.utils import (
    PROB_FLOOR,
    log_sum_exp,
    normalize_rows,
    random_stochastic_matrix,
    random_stochastic_vector,
    validate_sequences,
)


class TestLogSumExp:
    def test_matches_naive_on_moderate_values(self):
        values = np.array([0.1, -2.0, 3.5])
        assert log_sum_exp(values) == pytest.approx(np.log(np.exp(values).sum()))

    def test_handles_large_values_without_overflow(self):
        values = np.array([1000.0, 1000.0])
        assert log_sum_exp(values) == pytest.approx(1000.0 + np.log(2.0))

    def test_all_negative_infinity_returns_negative_infinity(self):
        assert log_sum_exp(np.array([-np.inf, -np.inf])) == -np.inf

    def test_axis_reduction(self):
        values = np.log(np.array([[1.0, 3.0], [2.0, 2.0]]))
        out = log_sum_exp(values, axis=1)
        assert out == pytest.approx(np.log([4.0, 4.0]))

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=20))
    def test_property_ge_max(self, values):
        arr = np.array(values)
        assert log_sum_exp(arr) >= arr.max() - 1e-9


class TestNormalizeRows:
    def test_rows_sum_to_one(self):
        out = normalize_rows(np.array([[1.0, 3.0], [2.0, 2.0]]))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_zero_row_becomes_uniform(self):
        out = normalize_rows(np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 2.0]]))
        np.testing.assert_allclose(out[0], [1 / 3] * 3)

    def test_one_dimensional_input(self):
        out = normalize_rows(np.array([2.0, 2.0]))
        assert out.shape == (2,)
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_entries_floored_strictly_positive(self):
        out = normalize_rows(np.array([[1.0, 0.0]]))
        # The final normalization can nudge the floored value slightly below
        # PROB_FLOOR; strict positivity at that magnitude is the contract.
        assert out.min() >= PROB_FLOOR * 0.5

    @given(
        st.lists(
            st.lists(st.floats(min_value=0, max_value=100), min_size=3, max_size=3),
            min_size=1,
            max_size=6,
        )
    )
    def test_property_stochastic(self, rows):
        out = normalize_rows(np.array(rows))
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-9)
        assert (out > 0).all()


class TestRandomStochastic:
    def test_vector_sums_to_one(self):
        rng = np.random.default_rng(0)
        vec = random_stochastic_vector(5, rng)
        assert vec.sum() == pytest.approx(1.0)
        assert (vec > 0).all()

    def test_matrix_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        mat = random_stochastic_matrix(4, 6, rng)
        assert mat.shape == (4, 6)
        np.testing.assert_allclose(mat.sum(axis=1), 1.0)

    def test_seeded_determinism(self):
        a = random_stochastic_matrix(3, 3, np.random.default_rng(7))
        b = random_stochastic_matrix(3, 3, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestValidateSequences:
    def test_accepts_valid_sequences(self):
        out = validate_sequences([[0, 1, 2], [2, 1]], n_symbols=3)
        assert len(out) == 2
        assert out[0].dtype == np.int64

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_sequences([], n_symbols=3)

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError, match="empty"):
            validate_sequences([[0, 1], []], n_symbols=3)

    def test_rejects_out_of_range_symbols(self):
        with pytest.raises(ValueError, match="outside"):
            validate_sequences([[0, 3]], n_symbols=3)
        with pytest.raises(ValueError, match="outside"):
            validate_sequences([[-1, 0]], n_symbols=3)

    def test_rejects_multidimensional(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            validate_sequences([[[0], [1]]], n_symbols=3)
