"""Shmem backend: segment publish/attach mechanics and backend parity.

Worker processes are expensive to spawn, so the parity-focused tests
share one module-scoped shmem service (warmed during fixture setup so
its segments predate the suite-wide leak guard's per-test snapshot) and
its sequential twin; tests that mutate state — and therefore republish
segments under new names — build their own function-scoped services and
close them before the leak guard looks.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.serve import ShardedRecommender
from repro.serve.shmem import (
    SEGMENT_PREFIX,
    Attachment,
    SegmentManifest,
    ShardPublisher,
    ShmemError,
    ShmemWorkerPool,
    attach_state,
    live_segment_names,
    publish_state,
)


@pytest.fixture(scope="module")
def stream_slice(ytube_small, ytube_stream):
    """A small serving burst: items plus their interaction payloads."""
    items = ytube_stream.items_in_partition(2)[:10]
    interactions = ytube_stream.partitions[2][:20]
    item_by_id = {item.item_id: item for item in ytube_small.items}
    return items, interactions, item_by_id


@pytest.fixture(scope="module")
def shmem_pair(fitted_ssrec, stream_slice):
    """A shmem service and its sequential twin, fed one identical
    mutation burst and warmed (so segments exist before any test body —
    the per-test leak guard must only ever see pre-existing names)."""
    items, interactions, item_by_id = stream_slice
    shmem = ShardedRecommender.from_trained(
        copy.deepcopy(fitted_ssrec),
        n_shards=2,
        strategy="hash",
        use_index=False,
        backend="shmem",
    )
    twin = ShardedRecommender.from_trained(
        copy.deepcopy(fitted_ssrec),
        n_shards=2,
        strategy="hash",
        use_index=False,
        backend="sequential",
    )
    for i, item in enumerate(items):
        for service in (shmem, twin):
            service.observe_item(item)
            for inter in interactions[2 * i : 2 * i + 2]:
                service.update(inter, item_by_id.get(inter.item_id))
            service.recommend(item, 6)
    yield shmem, twin
    shmem.close()
    twin.close()


# ----------------------------------------------------------------------
# publish/attach unit mechanics (no worker processes)
# ----------------------------------------------------------------------
class TestPublishAttach:
    STATE = {
        "matrix": np.arange(24, dtype=np.float64).reshape(4, 6),
        "vector": np.linspace(0.0, 1.0, 17),
        "meta": {"rows": 4, "name": "s"},
    }

    def _published(self):
        return publish_state(self.STATE, epoch=7)

    def test_round_trip_is_bitwise_and_zero_copy(self):
        manifest, shm = self._published()
        try:
            att = attach_state(manifest)
            assert att.state["meta"] == self.STATE["meta"]
            for key in ("matrix", "vector"):
                got = att.state[key]
                assert got.dtype == self.STATE[key].dtype
                assert got.shape == self.STATE[key].shape
                assert np.array_equal(got, self.STATE[key])
                # Zero-copy: the array body lives inside the segment.
                assert not got.flags.owndata
            att.close()
        finally:
            shm.close()
            shm.unlink()

    def test_attached_arrays_are_read_only(self):
        manifest, shm = self._published()
        try:
            att = attach_state(manifest)
            assert not att.state["matrix"].flags.writeable
            with pytest.raises(ValueError):
                att.state["matrix"][0, 0] = 99.0
            att.close()
        finally:
            shm.close()
            shm.unlink()

    def test_stale_epoch_manifest_is_typed_error(self):
        manifest, shm = self._published()
        try:
            stale = SegmentManifest(
                name=manifest.name,
                epoch=manifest.epoch + 1,
                nbytes=manifest.nbytes,
                checksum=manifest.checksum,
            )
            with pytest.raises(ShmemError, match="stale manifest"):
                attach_state(stale)
        finally:
            shm.close()
            shm.unlink()

    def test_vanished_segment_is_typed_error(self):
        manifest, shm = self._published()
        shm.close()
        shm.unlink()
        with pytest.raises(ShmemError, match="vanished"):
            attach_state(manifest)

    def test_checksum_mismatch_is_typed_error(self):
        manifest, shm = self._published()
        try:
            forged = SegmentManifest(
                name=manifest.name,
                epoch=manifest.epoch,
                nbytes=manifest.nbytes,
                checksum="0" * 64,
            )
            with pytest.raises(ShmemError, match="checksum mismatch"):
                attach_state(forged)
        finally:
            shm.close()
            shm.unlink()

    def test_corrupt_magic_is_typed_error(self):
        manifest, shm = self._published()
        try:
            shm.buf[0] = 0xFF
            with pytest.raises(ShmemError, match="bad magic"):
                attach_state(manifest)
        finally:
            shm.close()
            shm.unlink()

    def test_segment_names_carry_the_prefix(self):
        manifest, shm = self._published()
        try:
            assert manifest.name.startswith(SEGMENT_PREFIX)
            assert manifest.name in live_segment_names()
        finally:
            shm.close()
            shm.unlink()
        assert manifest.name not in live_segment_names()

    def test_attachment_close_is_idempotent(self):
        manifest, shm = self._published()
        try:
            att = attach_state(manifest)
            att.close()
            att.close()
            assert att.state is None
        finally:
            shm.close()
            shm.unlink()


class TestShardPublisher:
    def test_epochs_bump_and_old_segments_retire(self):
        publisher = ShardPublisher()
        try:
            first = publisher.publish(0, {"x": np.ones(3)})
            assert first.epoch == 1
            second = publisher.publish(0, {"x": np.zeros(3)})
            assert second.epoch == 2
            assert publisher.manifest(0) == second
            # The retired segment is gone; new attaches must fail loudly.
            with pytest.raises(ShmemError, match="vanished"):
                attach_state(first)
            att = attach_state(second)
            assert np.array_equal(att.state["x"], np.zeros(3))
            att.close()
            assert publisher.retired == 1
            assert publisher.publishes == 2
        finally:
            publisher.close()
        live = set(live_segment_names())
        assert first.name not in live and second.name not in live

    def test_republish_keeps_live_readers_valid(self):
        """POSIX unlink-under-mapping: a reader attached to the old epoch
        keeps a fully valid (immutable) view while the publisher moves
        on — the no-torn-reads half of the epoch protocol."""
        publisher = ShardPublisher()
        try:
            old = publisher.publish(0, {"x": np.full(5, 7.0)})
            att = attach_state(old)
            publisher.publish(0, {"x": np.full(5, 9.0)})
            # The old mapping still reads the old (complete) state.
            assert np.array_equal(att.state["x"], np.full(5, 7.0))
            att.close()
        finally:
            publisher.close()

    def test_per_shard_epochs_are_independent(self):
        publisher = ShardPublisher()
        try:
            publisher.publish(0, {"x": np.ones(1)})
            publisher.publish(0, {"x": np.ones(1)})
            publisher.publish(1, {"x": np.ones(1)})
            assert publisher.epoch(0) == 2
            assert publisher.epoch(1) == 1
            assert publisher.epoch(2) == 0
        finally:
            publisher.close()

    def test_obs_registry_reports_segments_and_epochs(self):
        publisher = ShardPublisher()
        try:
            publisher.publish(0, {"x": np.ones(4)})
            registry = publisher.obs_registry()
            counters = {c.name: c.value for c in registry.counters()}
            gauges = {(g.name, g.labels.get("shard")): g.value for g in registry.gauges()}
            assert counters["shmem.publisher.publishes"] == 1
            assert counters["shmem.publisher.bytes_published"] > 0
            assert gauges[("shmem.publisher.live_segments", None)] == 1
            assert gauges[("shmem.publisher.epoch", "0")] == 1
        finally:
            publisher.close()

    def test_closed_publisher_rejects_publish(self):
        publisher = ShardPublisher()
        publisher.close()
        with pytest.raises(ShmemError, match="closed"):
            publisher.publish(0, {"x": np.ones(1)})


# ----------------------------------------------------------------------
# Backend parity (module-scoped warmed service)
# ----------------------------------------------------------------------
class TestShmemParity:
    """The shmem fan-out must not move a single bit vs sequential."""

    def test_warmed_stream_is_bit_identical(self, shmem_pair, stream_slice):
        shmem, twin = shmem_pair
        items, _, _ = stream_slice
        assert shmem.recommend_batch(items, 6) == twin.recommend_batch(items, 6)
        for item in items[:3]:
            assert shmem.recommend(item, 6) == twin.recommend(item, 6)

    def test_worker_restart_reattaches_bit_identically(
        self, shmem_pair, stream_slice
    ):
        shmem, twin = shmem_pair
        items, _, _ = stream_slice
        before = shmem.recommend_batch(items, 5)
        shmem.restart_workers()
        assert shmem.recommend_batch(items, 5) == before
        assert before == twin.recommend_batch(items, 5)

    def test_parent_stays_authoritative(self, shmem_pair):
        shmem, twin = shmem_pair
        # n_users reads the parent's shards even while the pool is live.
        assert shmem._pool is not None
        assert shmem.n_users == twin.n_users
        assert shmem._pool.collect_all() is not shmem.shards
        assert shmem._pool.collect_all() == shmem.shards

    def test_metrics_combine_worker_and_parent_counters(self, shmem_pair):
        shmem, _ = shmem_pair
        rows = shmem.metrics()
        assert [row["shard_id"] for row in rows] == [0, 1]
        # Serving happened in the workers; user counts come from the parent.
        assert sum(row["items_served"] for row in rows) > 0
        assert sum(row["users"] for row in rows) == shmem.n_users

    def test_obs_registry_includes_segment_telemetry(self, shmem_pair):
        shmem, _ = shmem_pair
        registry = shmem.obs_registry()
        counters = {c.name for c in registry.counters()}
        assert "shmem.publisher.publishes" in counters
        assert "shmem.worker.attaches" in counters
        assert "shard.queries" in counters
        gauges = {g.name for g in registry.gauges()}
        assert "shmem.publisher.live_segments" in gauges
        assert "shmem.worker.epoch" in gauges

    def test_serving_uses_the_shmem_exec_plan(self, shmem_pair):
        shmem, _ = shmem_pair
        assert shmem.executor().plan.name == "sharded-scan-shmem"

    def test_spans_cross_the_worker_boundary(self, shmem_pair, stream_slice):
        from repro.obs import Trace, use_trace

        shmem, twin = shmem_pair
        items, _, _ = stream_slice
        trace = Trace()
        with use_trace(trace):
            traced = shmem.recommend_batch(items[:4], 5)
        assert traced == twin.recommend_batch(items[:4], 5)
        names = trace.span_names()
        assert "worker.serve" in names
        assert "shard.scan" in names


class TestShmemMutationEpochs:
    """Copy-on-publish: mutations republish, clean serving does not."""

    @pytest.fixture
    def service(self, fitted_ssrec):
        service = ShardedRecommender.from_trained(
            copy.deepcopy(fitted_ssrec),
            n_shards=2,
            strategy="hash",
            use_index=False,
            backend="shmem",
        )
        yield service
        service.close()

    def test_epoch_bumps_only_on_mutation(self, service, stream_slice):
        items, interactions, item_by_id = stream_slice
        service.recommend(items[0], 5)
        pool = service._pool
        epochs = [pool.publisher.epoch(s.shard_id) for s in service.shards]
        assert epochs == [1, 1]  # first window published everything
        # Clean serving: same epochs, no republish.
        service.recommend(items[1], 5)
        service.recommend_batch(items[:4], 5)
        assert [pool.publisher.epoch(s.shard_id) for s in service.shards] == epochs
        # A routed update dirties exactly the owning shard.
        inter = interactions[0]
        shard_id = service.plan.shard_of(inter.user_id)
        service.update(inter, item_by_id.get(inter.item_id))
        service.recommend(items[0], 5)
        after = [pool.publisher.epoch(s.shard_id) for s in service.shards]
        assert after[shard_id] == epochs[shard_id] + 1
        assert sum(after) == sum(epochs) + 1
        # observe_item moves shared scorer state: every shard republishes.
        service.observe_item(items[0])
        service.recommend(items[0], 5)
        assert [pool.publisher.epoch(s.shard_id) for s in service.shards] == [
            e + 1 for e in after
        ]

    def test_close_unlinks_every_segment(self, service, stream_slice):
        items, _, _ = stream_slice
        service.recommend(items[0], 5)
        names = [
            service._pool.publisher.manifest(s.shard_id).name
            for s in service.shards
        ]
        live = live_segment_names()
        assert all(name in live for name in names)
        service.close()
        live = live_segment_names()
        assert all(name not in live for name in names)
        # The service stays usable: a fresh pool republishes lazily.
        assert service._pool is None
        assert service.recommend(items[0], 5)
        service.close()


class TestShmemIndexParity:
    def test_index_block_stream_is_bit_identical(
        self, fitted_ssrec_indexed, stream_slice
    ):
        """Block-sharded CPPse serving over shmem, with interleaved
        mutations and maintenance, stays bit-identical to sequential."""
        items, interactions, item_by_id = stream_slice
        shmem = ShardedRecommender.from_trained(
            copy.deepcopy(fitted_ssrec_indexed),
            n_shards=2,
            strategy="block",
            use_index=True,
            backend="shmem",
        )
        twin = ShardedRecommender.from_trained(
            copy.deepcopy(fitted_ssrec_indexed),
            n_shards=2,
            strategy="block",
            use_index=True,
            backend="sequential",
        )
        try:
            for i, item in enumerate(items[:6]):
                for service in (shmem, twin):
                    service.observe_item(item)
                    for inter in interactions[2 * i : 2 * i + 2]:
                        service.update(inter, item_by_id.get(inter.item_id))
                assert shmem.recommend(item, 6) == twin.recommend(item, 6)
            assert shmem.run_maintenance() == twin.run_maintenance()
            assert shmem.recommend_batch(items, 6) == twin.recommend_batch(items, 6)
            assert shmem.executor().plan.name == "sharded-index-shmem"
        finally:
            shmem.close()
            twin.close()


class TestShmemSnapshot:
    def test_snapshot_round_trip_drops_segments(
        self, fitted_ssrec, stream_slice, tmp_path
    ):
        from repro.serve.snapshot import read_manifest

        items, interactions, item_by_id = stream_slice
        before = set(live_segment_names())  # other fixtures' segments
        with ShardedRecommender.from_trained(
            copy.deepcopy(fitted_ssrec),
            n_shards=2,
            strategy="hash",
            use_index=False,
            backend="shmem",
        ) as service:
            for inter in interactions[:10]:
                service.update(inter, item_by_id.get(inter.item_id))
            expected = service.recommend_batch(items, 5)
            service.save(tmp_path / "snap")
        assert set(live_segment_names()) <= before
        manifest = read_manifest(tmp_path / "snap")
        assert manifest["serve_backend"] == "shmem"
        restored = ShardedRecommender.load(tmp_path / "snap")
        try:
            assert restored.backend == "shmem"
            # Segments are runtime artifacts: none exist until first serve.
            assert restored._pool is None
            assert restored.recommend_batch(items, 5) == expected
        finally:
            restored.close()


class TestShmemPoolValidation:
    def test_pool_requires_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShmemWorkerPool([])

    def test_pool_rejects_unknown_start_method(self, fitted_ssrec):
        service = ShardedRecommender.from_trained(
            fitted_ssrec, n_shards=2, use_index=False
        )
        with pytest.raises(ValueError, match="start_method"):
            ShmemWorkerPool(service.shards, start_method="fork")

    def test_attachment_graveyard_default_empty(self):
        assert isinstance(Attachment.__dataclass_fields__, dict)
