"""repro.bench: artifact schema validation and the regression gate."""

from __future__ import annotations

import json
import re

import pytest

from repro.bench import (
    BenchResult,
    BenchSchemaError,
    artifact_name,
    compare_results,
    load_result,
    validate_result,
)
from repro.bench.__main__ import main as bench_main


def make_result(**overrides) -> BenchResult:
    fields = dict(
        name="demo",
        seed=7,
        scale="small",
        metrics={
            "scan": {"items_per_sec": 100.0},
            "index": {"items_per_sec": 40.0, "latency_ms": {"p95_ms": 3.0}},
            "driver": {"seconds": 12.5},
        },
        checks={"parity_ok": True},
    )
    fields.update(overrides)
    return BenchResult(**fields)


class TestSchema:
    def test_write_and_load_round_trip(self, tmp_path):
        path = make_result().write(tmp_path)
        assert path.name == artifact_name("demo") == "BENCH_demo.json"
        data = load_result(path)
        assert data["metrics"]["scan"]["items_per_sec"] == 100.0
        assert data["seed"] == 7
        assert data["meta"]["cpu_count"] >= 1

    def test_meta_captures_bench_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        result = make_result()
        assert result.meta["env"]["REPRO_BENCH_SCALE"] == "small"

    def test_rejects_empty_metrics(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="non-empty"):
            make_result(metrics={}).write(tmp_path)

    def test_rejects_path_without_comparable_metric(self, tmp_path):
        bad = make_result(metrics={"scan": {"latency_ms": {"p95_ms": 1.0}}})
        with pytest.raises(BenchSchemaError, match="items_per_sec"):
            bad.write(tmp_path)

    def test_rejects_negative_throughput(self):
        with pytest.raises(BenchSchemaError, match="non-negative"):
            validate_result(
                make_result(metrics={"scan": {"items_per_sec": -1.0}}).to_dict()
            )

    def test_rejects_wrong_schema_version(self):
        data = make_result().to_dict()
        data["schema_version"] = 99
        with pytest.raises(BenchSchemaError, match="schema_version"):
            validate_result(data)

    def test_error_lists_every_problem(self):
        data = make_result(metrics={"scan": {}}).to_dict()
        data["seed"] = "seven"
        with pytest.raises(BenchSchemaError) as excinfo:
            validate_result(data)
        message = str(excinfo.value)
        assert "seed must be an integer" in message
        assert "metrics['scan']" in message

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="malformed JSON"):
            load_result(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="unreadable"):
            load_result(tmp_path / "BENCH_nope.json")



class TestExtrasValidation:
    """extras is free-form but must stay strict-JSON clean all the way
    down — nested metric-registry dumps ride along in it now."""

    def test_nested_obs_dump_accepted(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("server.requests").inc(3)
        registry.histogram("server.route_seconds", op="recommend").record(0.002)
        result = make_result(extras={
            "scale": "small",
            "obs": {
                "registry": registry.to_dict(),
                "prometheus": registry.to_prometheus(),
                "slow_requests": [
                    {"op": "recommend", "seconds": 0.5, "spans": [
                        {"name": "server.request", "parent_id": None},
                    ]},
                ],
            },
        })
        path = result.write(tmp_path)
        loaded = load_result(path)
        # The nested dump survives the round trip intact and re-parses.
        restored = MetricsRegistry.from_dict(loaded["extras"]["obs"]["registry"])
        assert restored.to_dict() == registry.to_dict()

    @pytest.mark.parametrize("poison, message", [
        ({"obs": {"p95": float("nan")}}, "finite"),
        ({"obs": {"p95": float("inf")}}, "finite"),
        ({"obs": [1, {"deep": [float("-inf")]}]}, "finite"),
        ({"obs": {"when": object()}}, "JSON-serializable"),
        ({"obs": {1: "non-string key"}}, "non-string key"),
    ])
    def test_poisoned_extras_rejected_before_write(self, tmp_path, poison, message):
        result = make_result(extras=poison)
        with pytest.raises(BenchSchemaError, match=message):
            result.write(tmp_path)
        # Validation ran before the write: nothing was poisoned on disk.
        assert list(tmp_path.iterdir()) == []

    def test_error_names_the_nested_path(self):
        data = make_result(extras={"obs": {"series": [1.0, float("nan")]}}).to_dict()
        with pytest.raises(BenchSchemaError, match=re.escape("extras['obs']['series'][1]")):
            validate_result(data)


class TestCompare:
    def test_within_tolerance_passes(self):
        base = make_result().to_dict()
        cur = make_result(metrics={
            "scan": {"items_per_sec": 90.0},
            "index": {"items_per_sec": 39.0, "latency_ms": {"p95_ms": 4.0}},
            "driver": {"seconds": 20.0},
        }).to_dict()
        report = compare_results(base, cur, tolerance=0.15)
        assert report.ok
        # seconds and latency are informational, never gated.
        gated = {(d.path, d.metric) for d in report.deltas if d.gated}
        assert gated == {("scan", "items_per_sec"), ("index", "items_per_sec")}

    def test_throughput_drop_fails(self):
        base = make_result().to_dict()
        cur = make_result(metrics={
            "scan": {"items_per_sec": 50.0},
            "index": {"items_per_sec": 40.0},
            "driver": {"seconds": 12.0},
        }).to_dict()
        report = compare_results(base, cur, tolerance=0.15)
        assert not report.ok
        assert [d.path for d in report.regressions] == ["scan"]
        assert "REGRESSED" in report.to_text()

    def test_missing_path_fails(self):
        base = make_result().to_dict()
        cur = make_result(metrics={"scan": {"items_per_sec": 100.0}}).to_dict()
        report = compare_results(base, cur)
        assert not report.ok
        assert "index" in report.missing_paths
        assert "driver" in report.missing_paths

    def test_new_paths_are_informational(self):
        base = make_result(metrics={"scan": {"items_per_sec": 10.0}}).to_dict()
        cur = make_result().to_dict()
        report = compare_results(base, cur)
        assert report.ok
        assert set(report.new_paths) == {"index", "driver"}

    def test_environment_mismatch_noted_but_not_gating(self):
        base = make_result().to_dict()
        cur = make_result().to_dict()
        cur["meta"] = dict(cur["meta"], cpu_count=int(base["meta"]["cpu_count"]) + 3)
        report = compare_results(base, cur)
        # A different machine never fails the gate by itself, but the
        # report must say the comparison is weakened.
        assert report.ok
        assert any("cpu_count" in note for note in report.environment_notes)
        assert "note:" in report.to_text()

    def test_name_mismatch_rejected(self):
        with pytest.raises(BenchSchemaError, match="compare like with like"):
            compare_results(
                make_result().to_dict(), make_result(name="other").to_dict()
            )

    def test_tolerance_validated(self):
        base = make_result().to_dict()
        with pytest.raises(ValueError, match="tolerance"):
            compare_results(base, base, tolerance=1.5)


class TestCli:
    def _write(self, directory, result):
        directory.mkdir(parents=True, exist_ok=True)
        return result.write(directory)

    def test_compare_files_pass(self, tmp_path, capsys):
        base = self._write(tmp_path / "base", make_result())
        cur = self._write(tmp_path / "cur", make_result())
        assert bench_main(["compare", str(base), str(cur)]) == 0
        assert "perf gate: PASS" in capsys.readouterr().out

    def test_compare_directories_fail_on_regression(self, tmp_path, capsys):
        self._write(tmp_path / "base", make_result())
        self._write(
            tmp_path / "cur",
            make_result(metrics={
                "scan": {"items_per_sec": 10.0},
                "index": {"items_per_sec": 40.0},
                "driver": {"seconds": 12.0},
            }),
        )
        code = bench_main(
            ["compare", str(tmp_path / "base"), str(tmp_path / "cur")]
        )
        assert code == 1
        assert "perf gate: FAIL" in capsys.readouterr().out

    def test_compare_directory_missing_current_artifact(self, tmp_path, capsys):
        self._write(tmp_path / "base", make_result())
        (tmp_path / "cur").mkdir()
        assert bench_main(["compare", str(tmp_path / "base"), str(tmp_path / "cur")]) == 1
        assert "NO current artifact" in capsys.readouterr().out

    def test_compare_empty_baseline_dir_errors(self, tmp_path, capsys):
        (tmp_path / "base").mkdir()
        (tmp_path / "cur").mkdir()
        assert bench_main(["compare", str(tmp_path / "base"), str(tmp_path / "cur")]) == 1
        assert "no BENCH_*.json artifacts" in capsys.readouterr().out

    def test_compare_mixed_file_and_dir_errors(self, tmp_path, capsys):
        base = self._write(tmp_path / "base", make_result())
        assert bench_main(["compare", str(base), str(tmp_path / "base")]) == 1
        assert "two files or two directories" in capsys.readouterr().out

    def test_validate_good_and_bad(self, tmp_path, capsys):
        good = self._write(tmp_path, make_result())
        assert bench_main(["validate", str(good)]) == 0
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"name": "bad"}))
        assert bench_main(["validate", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
