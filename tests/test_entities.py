"""Tests for the entity pipeline: vocabulary, extractor, expansion."""

import pytest
from hypothesis import given, strategies as st

from repro.entities.expansion import EntityExpander, proximity_credit
from repro.entities.extractor import EntityExtractor, EntityMention, tokenize
from repro.entities.vocabulary import EntityVocabulary


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Roger Federer vs. NADAL!") == ["roger", "federer", "vs", "nadal"]

    def test_keeps_apostrophes_and_digits(self):
        assert tokenize("Men's Final 2017") == ["men's", "final", "2017"]

    def test_empty_text(self):
        assert tokenize("") == []


class TestVocabulary:
    def test_add_and_lookup_roundtrip(self):
        vocab = EntityVocabulary()
        eid = vocab.add("Roger Federer")
        assert vocab.id_of("roger  federer") == eid
        assert vocab.name_of(eid) == "roger federer"
        assert "Roger Federer" in vocab

    def test_add_is_idempotent(self):
        vocab = EntityVocabulary()
        assert vocab.add("x") == vocab.add("X ")
        assert len(vocab) == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            EntityVocabulary().add("   ")

    def test_unknown_lookups(self):
        vocab = EntityVocabulary()
        assert vocab.id_of("ghost") is None
        with pytest.raises(KeyError):
            vocab.name_of(3)

    def test_document_frequency_deduplicates(self):
        vocab = EntityVocabulary()
        a, b = vocab.add("a"), vocab.add("b")
        vocab.observe_document([a, a, b], category=2)
        assert vocab.document_frequency(a) == 1
        assert vocab.category_frequency(a, 2) == 1
        assert vocab.category_frequency(a, 3) == 0
        assert vocab.entities_in_category(2) == [a, b]


class TestExtractor:
    @pytest.fixture()
    def extractor(self):
        ex = EntityExtractor()
        ex.add_phrases(["australian open", "roger federer", "rafael nadal", "match"])
        return ex

    def test_extracts_paper_example(self, extractor):
        text = "Australian Open 2017 Men's Final Roger Federer vs Rafael Nadal Full Match"
        names = [extractor.vocabulary.name_of(e) for e in extractor.extract(text)]
        assert names == ["australian open", "roger federer", "rafael nadal", "match"]

    def test_longest_match_wins(self):
        ex = EntityExtractor()
        short = ex.add_phrase("open")
        long = ex.add_phrase("australian open")
        assert ex.extract("the australian open begins") == [long]
        assert ex.extract("the open begins") == [short]

    def test_repetitions_preserved(self, extractor):
        ids = extractor.extract("match and match and match")
        assert len(ids) == 3
        assert len(set(ids)) == 1

    def test_extract_unique_deduplicates_in_order(self, extractor):
        text = "match roger federer match"
        unique = extractor.extract_unique(text)
        names = [extractor.vocabulary.name_of(e) for e in unique]
        assert names == ["match", "roger federer"]

    def test_mention_positions(self, extractor):
        mentions = extractor.annotate("watch roger federer match")
        assert mentions[0] == EntityMention(
            entity_id=extractor.vocabulary.id_of("roger federer"), start=1, length=2
        )
        assert mentions[1].start == 3

    def test_no_match_returns_empty(self, extractor):
        assert extractor.extract("completely unrelated words") == []

    def test_phrase_validation(self):
        ex = EntityExtractor(max_phrase_tokens=2)
        with pytest.raises(ValueError, match="tokens"):
            ex.add_phrase("one two three")
        with pytest.raises(ValueError, match="no tokens"):
            ex.add_phrase("!!!")

    def test_mentions_never_overlap_property(self, extractor):
        text = "australian open roger federer match " * 5
        mentions = extractor.annotate(text)
        for a, b in zip(mentions, mentions[1:]):
            assert a.start + a.length <= b.start


class TestProximityCredit:
    def test_adjacent_gets_full_credit(self):
        assert proximity_credit(0) == pytest.approx(1.0)

    def test_decays_with_distance(self):
        assert proximity_credit(1) < proximity_credit(0)
        assert proximity_credit(10) < proximity_credit(1)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            proximity_credit(-1)

    @given(st.integers(min_value=0, max_value=1000))
    def test_property_in_unit_interval(self, d):
        assert 0.0 < proximity_credit(d) <= 1.0


def mention(eid, start, length=1):
    return EntityMention(entity_id=eid, start=start, length=length)


class TestExpander:
    def test_close_pairs_outweigh_far_pairs(self):
        expander = EntityExpander(max_expansions=5, min_weight=0.0)
        # Entity 0 adjacent to 1, far from 2, repeatedly.
        for _ in range(5):
            expander.observe(0, [mention(0, 0), mention(1, 1), mention(2, 9)])
        expansions = expander.expand(0, 0)
        weights = {e.entity_id: e.weight for e in expansions}
        assert weights[1] > weights[2]

    def test_weights_in_unit_interval_and_below_one(self):
        expander = EntityExpander()
        expander.observe(1, [mention(0, 0), mention(1, 1), mention(2, 2)])
        for e in expander.expand(1, 0):
            assert 0.0 < e.weight <= 0.99

    def test_category_isolation(self):
        expander = EntityExpander()
        expander.observe(0, [mention(0, 0), mention(1, 1)])
        assert expander.expand(1, 0) == []

    def test_self_pairs_ignored(self):
        expander = EntityExpander()
        expander.observe(0, [mention(7, 0), mention(7, 1)])
        assert expander.expand(0, 7) == []

    def test_max_expansions_cap(self):
        expander = EntityExpander(max_expansions=2, min_weight=0.0)
        expander.observe(0, [mention(i, i) for i in range(6)])
        assert len(expander.expand(0, 0)) <= 2

    def test_zero_max_expansions_disables(self):
        expander = EntityExpander(max_expansions=0)
        expander.observe(0, [mention(0, 0), mention(1, 1)])
        assert expander.expand(0, 0) == []

    def test_expand_set_excludes_originals(self):
        expander = EntityExpander(min_weight=0.0)
        expander.observe(0, [mention(0, 0), mention(1, 1), mention(2, 2)])
        expanded = expander.expand_set(0, [0, 1])
        ids = {e.entity_id for e in expanded}
        assert 0 not in ids and 1 not in ids
        assert 2 in ids

    def test_expand_set_takes_max_weight_across_anchors(self):
        expander = EntityExpander(min_weight=0.0)
        for _ in range(3):
            expander.observe(0, [mention(0, 0), mention(2, 1)])   # strong 0-2
        expander.observe(0, [mention(1, 0), mention(2, 5)])        # weak 1-2
        expanded = expander.expand_set(0, [0, 1])
        weight_2 = next(e.weight for e in expanded if e.entity_id == 2)
        strong = next(e.weight for e in expander.expand(0, 0) if e.entity_id == 2)
        assert weight_2 == pytest.approx(strong)

    def test_observe_entity_list_convenience(self):
        expander = EntityExpander(min_weight=0.0)
        expander.observe_entity_list(3, [4, 5, 6])
        assert set(expander.related_entities(3, 4)) == {5, 6}

    def test_min_weight_filters(self):
        expander = EntityExpander(min_weight=0.9)
        expander.observe(0, [mention(0, 0), mention(1, 1), mention(2, 20)])
        ids = {e.entity_id for e in expander.expand(0, 0)}
        assert 2 not in ids  # far co-occurrence falls below min_weight
