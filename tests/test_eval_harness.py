"""Tests for the stream evaluation harness."""

import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.eval.harness import StreamEvaluator


class TestRun:
    def test_outcome_structure(self, fresh_ssrec, ytube_stream):
        evaluator = StreamEvaluator(ytube_stream, ks=(5, 10), max_items_per_partition=10)
        outcome = evaluator.run(fresh_ssrec)
        assert set(outcome.p_at_k) == {5, 10}
        assert outcome.n_items > 0
        assert all(0.0 <= p <= 1.0 for p in outcome.p_at_k.values())
        assert len(outcome.per_partition_timing) == len(ytube_stream.test_indices)
        assert outcome.timing.n == outcome.n_items

    def test_deterministic_across_runs(self, ytube_small, ytube_stream):
        def run_once():
            rec = SsRecRecommender(seed=1).fit(
                ytube_small, ytube_stream.training_interactions()
            )
            return StreamEvaluator(
                ytube_stream, ks=(5,), max_items_per_partition=20
            ).run(rec).p_at_k[5]

        assert run_once() == pytest.approx(run_once())

    def test_min_truth_filters_items(self, fresh_ssrec, ytube_stream):
        low = StreamEvaluator(ytube_stream, ks=(5,), min_truth=1)
        high = StreamEvaluator(ytube_stream, ks=(5,), min_truth=5)
        rec = fresh_ssrec
        n_low = low.run(rec, update=False).n_items
        n_high = high.run(rec, update=False).n_items
        assert n_high < n_low

    def test_max_items_caps_judged(self, fresh_ssrec, ytube_stream):
        evaluator = StreamEvaluator(ytube_stream, ks=(5,), max_items_per_partition=3)
        outcome = evaluator.run(fresh_ssrec, update=False)
        assert outcome.n_items <= 3 * len(ytube_stream.test_indices)

    def test_updates_disabled_leaves_profiles_static(self, fresh_ssrec, ytube_stream):
        versions_before = {
            p.user_id: p.version for p in fresh_ssrec.profiles
        }
        StreamEvaluator(ytube_stream, ks=(5,), max_items_per_partition=5).run(
            fresh_ssrec, update=False
        )
        versions_after = {p.user_id: p.version for p in fresh_ssrec.profiles}
        assert versions_before == versions_after

    def test_works_with_baselines(self, ytube_small, ytube_stream):
        from repro.baselines.ctt import CTTRecommender

        ctt = CTTRecommender().fit(ytube_small, ytube_stream.training_interactions())
        outcome = StreamEvaluator(
            ytube_stream, ks=(5,), max_items_per_partition=10
        ).run(ctt)
        assert outcome.n_items > 0


class TestLambdaSweep:
    def test_sweep_matches_direct_run_at_same_lambda(self, ytube_small, ytube_stream):
        """The decomposed-score sweep must equal a plain run whose config
        has that lambda — exactness of the Fig. 6/7 shortcut."""
        lam = 0.3
        rec_sweep = SsRecRecommender(seed=1).fit(
            ytube_small, ytube_stream.training_interactions()
        )
        evaluator = StreamEvaluator(ytube_stream, ks=(5, 10))
        sweep = evaluator.run_lambda_sweep(rec_sweep, [lam])

        rec_direct = SsRecRecommender(
            config=SsRecConfig(lambda_s=lam), seed=1
        ).fit(ytube_small, ytube_stream.training_interactions())
        direct = evaluator.run(rec_direct).p_at_k
        assert sweep[lam][5] == pytest.approx(direct[5])
        assert sweep[lam][10] == pytest.approx(direct[10])

    def test_sweep_requires_fitted_scan_recommender(self, ytube_stream):
        evaluator = StreamEvaluator(ytube_stream)
        with pytest.raises(ValueError):
            evaluator.run_lambda_sweep(SsRecRecommender(), [0.5])


class TestMaintenanceCost:
    def test_cost_positive_and_increasing_with_size(self, ytube_small, ytube_stream):
        def cost(n):
            rec = SsRecRecommender(use_index=True, seed=1).fit(
                ytube_small, ytube_stream.training_interactions()
            )
            return StreamEvaluator(ytube_stream).maintenance_cost(rec, n)

        c1, c3 = cost(1), cost(3)
        assert c1 > 0
        assert c3 > c1 * 0.8  # more updates should not be dramatically cheaper

    def test_requires_index(self, fresh_ssrec, ytube_stream):
        with pytest.raises(ValueError):
            StreamEvaluator(ytube_stream).maintenance_cost(fresh_ssrec, 1)

    def test_invalid_partition_count_rejected(self, fresh_ssrec_indexed, ytube_stream):
        with pytest.raises(ValueError):
            StreamEvaluator(ytube_stream).maintenance_cost(fresh_ssrec_indexed, 9)
