"""Plan-level result cache: exactness, epoch invalidation, LRU mechanics."""

import copy

import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.schema import SocialItem
from repro.exec.cache import ResultCache
from repro.serve.service import ShardedRecommender


def _item(item_id: int, category: int = 0, producer: int = 0, entities=(1, 2)) -> SocialItem:
    return SocialItem(
        item_id=item_id,
        category=category,
        producer=producer,
        entities=tuple(entities),
        text="",
        timestamp=float(item_id),
    )


class TestResultCacheUnit:
    def test_store_lookup_roundtrip(self):
        cache = ResultCache(max_entries=4)
        key = cache.key(_item(1), 5, epoch=0)
        assert cache.lookup(key) is None
        cache.store(key, [(3, 0.5), (1, 0.25)])
        assert cache.lookup(key) == [(3, 0.5), (1, 0.25)]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_hits_return_copies(self):
        cache = ResultCache(max_entries=4)
        key = cache.key(_item(1), 5, epoch=0)
        cache.store(key, [(3, 0.5)])
        first = cache.lookup(key)
        first.append((999, -1.0))
        assert cache.lookup(key) == [(3, 0.5)]

    def test_epoch_partitions_keys(self):
        cache = ResultCache(max_entries=4)
        cache.store(cache.key(_item(1), 5, epoch=0), [(3, 0.5)])
        assert cache.lookup(cache.key(_item(1), 5, epoch=1)) is None

    def test_k_and_signature_partition_keys(self):
        cache = ResultCache(max_entries=8)
        cache.store(cache.key(_item(1), 5, epoch=0), [(3, 0.5)])
        assert cache.lookup(cache.key(_item(1), 6, epoch=0)) is None
        assert cache.lookup(cache.key(_item(1, entities=(9,)), 5, epoch=0)) is None

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        keys = [cache.key(_item(i), 5, epoch=0) for i in range(3)]
        for i, key in enumerate(keys):
            cache.store(key, [(i, 0.0)])
        assert cache.stats.evictions == 1
        assert cache.lookup(keys[0]) is None  # oldest entry retired
        assert cache.lookup(keys[2]) == [(2, 0.0)]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)

    def test_clear_keeps_counters(self):
        cache = ResultCache(max_entries=4)
        key = cache.key(_item(1), 5, epoch=0)
        cache.store(key, [(3, 0.5)])
        cache.lookup(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


@pytest.fixture()
def cached_pair(ytube_small, ytube_stream):
    """(uncached, cached) twins fitted identically in scan mode."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec, copy.deepcopy(rec).enable_result_cache()


class TestCachedServing:
    def test_cached_plan_selected(self, cached_pair):
        uncached, cached = cached_pair
        assert uncached.executor().plan.name == "scan-item"
        assert cached.executor().plan.name == "scan-item-cached"
        assert cached.result_cache_stats() is not None
        assert uncached.result_cache_stats() is None

    def test_hits_are_bit_identical(self, cached_pair, ytube_small):
        uncached, cached = cached_pair
        item = ytube_small.items[0]
        first = cached.recommend(item, 7)
        again = cached.recommend(item, 7)
        assert again == first == uncached.recommend(item, 7)
        stats = cached.result_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_update_invalidates(self, cached_pair, ytube_small, ytube_stream):
        uncached, cached = cached_pair
        item = ytube_small.items[0]
        cached.recommend(item, 7)
        inter = ytube_stream.partitions[2][0]
        for rec in (uncached, cached):
            rec.update(inter, ytube_small.item(inter.item_id))
        assert cached.recommend(item, 7) == uncached.recommend(item, 7)
        stats = cached.result_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 2  # post-update miss

    def test_maintenance_flush_invalidates(self, ytube_small, ytube_stream):
        rec = SsRecRecommender(config=SsRecConfig(), use_index=True, seed=1)
        rec.fit(ytube_small, ytube_stream.training_interactions())
        rec.enable_result_cache()
        item = ytube_small.items[0]
        rec.recommend(item, 7)
        rec.run_maintenance()
        rec.recommend(item, 7)
        stats = rec.result_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_observe_does_not_invalidate(self, cached_pair, ytube_small):
        """Uploads advance producer/expander state but cannot move the
        score of an already-queried item against unchanged profiles —
        redelivered items legally hit across interleaved uploads."""
        uncached, cached = cached_pair
        item, other = ytube_small.items[0], ytube_small.items[1]
        first = cached.recommend(item, 7)
        for rec in (uncached, cached):
            rec.observe_item(other)
        assert cached.recommend(item, 7) == first == uncached.recommend(item, 7)
        assert cached.result_cache_stats()["hits"] == 1

    def test_batch_dedupes_within_window(self, cached_pair, ytube_small):
        uncached, cached = cached_pair
        a, b = ytube_small.items[0], ytube_small.items[1]
        window = [a, b, a, a, b]
        assert cached.recommend_batch(window, 6) == uncached.recommend_batch(window, 6)
        stats = cached.result_cache_stats()
        assert stats["misses"] == 2  # one compute per distinct signature

    def test_interleaved_stream_parity(self, cached_pair, ytube_small, ytube_stream):
        uncached, cached = cached_pair
        items = ytube_stream.items_in_partition(2)[:8]
        updates = ytube_stream.partitions[2][:16]
        for i, item in enumerate(items):
            for inter in updates[2 * i : 2 * i + 2]:
                payload = ytube_small.item(inter.item_id)
                uncached.update(inter, payload)
                cached.update(inter, payload)
            window = [item, items[0], item]  # redeliveries mixed in
            assert [cached.recommend(it, 5) for it in window] == [
                uncached.recommend(it, 5) for it in window
            ]
            assert cached.recommend_batch(window, 5) == uncached.recommend_batch(
                window, 5
            )

    def test_disable_restores_uncached_plan(self, cached_pair):
        _, cached = cached_pair
        cached.enable_result_cache(False)
        assert cached.executor().plan.name == "scan-item"

    def test_config_field_enables_cache(self, ytube_small, ytube_stream):
        rec = SsRecRecommender(
            config=SsRecConfig(result_cache=True, result_cache_size=32),
            use_index=False,
            seed=1,
        )
        rec.fit(ytube_small, ytube_stream.training_interactions())
        assert rec.executor().plan.name == "scan-item-cached"
        assert rec.executor().result_cache.max_entries == 32


class TestCachedSharded:
    def test_sharded_cached_parity_and_stats(self, fitted_ssrec, ytube_small):
        with ShardedRecommender.from_trained(
            fitted_ssrec, n_shards=2, strategy="hash"
        ) as service:
            service.enable_result_cache()
            assert service.executor().plan.name == "sharded-scan-hash-cached"
            item = ytube_small.items[0]
            first = service.recommend(item, 6)
            assert service.recommend(item, 6) == first == fitted_ssrec.recommend(item, 6)
            assert service.result_cache_stats()["hits"] == 1

    def test_snapshot_drops_cache_but_keeps_flag(
        self, cached_pair, ytube_small, tmp_path
    ):
        uncached, cached = cached_pair
        item = ytube_small.items[0]
        cached.recommend(item, 7)
        cached.save(tmp_path / "snap")
        restored = SsRecRecommender.load(tmp_path / "snap")
        assert restored.executor().plan.name == "scan-item-cached"
        stats = restored.result_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0  # cache starts cold
        assert restored.recommend(item, 7) == uncached.recommend(item, 7)
