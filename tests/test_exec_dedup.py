"""Near-duplicate collapse stage: exactness, approx grouping, epoch rules."""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.schema import SocialItem
from repro.exec.dedup import DedupState
from repro.serve.service import ShardedRecommender


def _item(item_id: int, category: int = 0, producer: int = 0, entities=(1, 2)) -> SocialItem:
    return SocialItem(
        item_id=item_id,
        category=category,
        producer=producer,
        entities=tuple(entities),
        text="",
        timestamp=float(item_id),
    )


def _near_duplicate(item: SocialItem, *, item_id: int, producer: int | None = None,
                    entities=None) -> SocialItem:
    """A fresh-id re-upload of ``item`` with optionally jittered fields."""
    return SocialItem(
        item_id=item_id,
        category=item.category,
        producer=item.producer if producer is None else producer,
        entities=item.entities if entities is None else tuple(entities),
        text=item.text,
        timestamp=item.timestamp,
    )


class TestDedupStateUnit:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="mode"):
            DedupState("off")
        with pytest.raises(ValueError, match="threshold"):
            DedupState("approx", threshold=0.0)
        with pytest.raises(ValueError, match="max_groups"):
            DedupState("exact", max_groups=0)

    def test_exact_store_lookup_roundtrip(self):
        state = DedupState("exact")
        key = state.exact_key(_item(1), [(1, 0.5)], 5, epoch=0)
        assert state.lookup_exact(key) is None
        state.store_exact(key, [(3, 0.5), (1, 0.25)])
        assert state.lookup_exact(key) == [(3, 0.5), (1, 0.25)]
        assert state.stats.collapsed == 1 and state.stats.groups == 1

    def test_exact_hits_return_copies(self):
        state = DedupState("exact")
        key = state.exact_key(_item(1), [(1, 0.5)], 5, epoch=0)
        state.store_exact(key, [(3, 0.5)])
        first = state.lookup_exact(key)
        first.append((999, -1.0))
        assert state.lookup_exact(key) == [(3, 0.5)]

    def test_exact_key_partitions(self):
        """Same declared entities, different resolved expansion / k /
        epoch / producer / category — all distinct keys."""
        state = DedupState("exact")
        base = state.exact_key(_item(1), [(1, 0.5)], 5, epoch=0)
        state.store_exact(base, [(3, 0.5)])
        assert state.lookup_exact(
            state.exact_key(_item(1), [(1, 0.75)], 5, epoch=0)) is None
        assert state.lookup_exact(
            state.exact_key(_item(1), [(1, 0.5)], 6, epoch=0)) is None
        assert state.lookup_exact(
            state.exact_key(_item(1), [(1, 0.5)], 5, epoch=1)) is None
        assert state.lookup_exact(
            state.exact_key(_item(1, producer=9), [(1, 0.5)], 5, epoch=0)) is None
        assert state.lookup_exact(
            state.exact_key(_item(1, category=3), [(1, 0.5)], 5, epoch=0)) is None
        # ...but a *different id* with the same scorer inputs is a hit.
        assert state.lookup_exact(
            state.exact_key(_item(42), [(1, 0.5)], 5, epoch=0)) == [(3, 0.5)]

    def test_exact_lru_eviction(self):
        state = DedupState("exact", max_groups=2)
        keys = [state.exact_key(_item(i), [(i, 1.0)], 5, epoch=0) for i in range(3)]
        for i, key in enumerate(keys):
            state.store_exact(key, [(i, 0.0)])
        assert state.lookup_exact(keys[0]) is None  # oldest retired
        assert state.lookup_exact(keys[2]) == [(2, 0.0)]

    def test_approx_collapse_and_false_merge_accounting(self):
        state = DedupState("approx", threshold=0.6)
        state.sync_epoch(0)
        founder, collapsed = state.group_for(_item(1, entities=(1, 2, 3)), 5)
        assert not collapsed
        founder.ranked = [(7, 1.0)]
        # Jaccard 3/4 >= 0.6, same category: collapses (producer differs).
        group, collapsed = state.group_for(
            _item(2, producer=9, entities=(1, 2, 3, 4)), 5)
        assert collapsed and group is founder
        # Jaccard 1/5 < 0.6: LSH may candidate it, but the verifier must
        # reject — either way it founds its own group.
        _, collapsed = state.group_for(_item(3, entities=(3, 10, 11)), 5)
        assert not collapsed
        assert state.stats.collapsed == 1
        assert state.stats.groups == 2

    def test_approx_category_mismatch_never_merges(self):
        state = DedupState("approx", threshold=0.5)
        state.sync_epoch(0)
        state.group_for(_item(1, category=0, entities=(1, 2, 3)), 5)
        _, collapsed = state.group_for(_item(2, category=1, entities=(1, 2, 3)), 5)
        assert not collapsed
        assert state.stats.false_merge_checks >= 1

    def test_approx_k_mismatch_not_a_usable_result(self):
        state = DedupState("approx", threshold=0.5)
        state.sync_epoch(0)
        state.group_for(_item(1, entities=(1, 2, 3)), 5)
        _, collapsed = state.group_for(_item(2, entities=(1, 2, 3)), 6)
        assert not collapsed  # identical content, different cut depth

    def test_epoch_move_drops_groups_keeps_counters(self):
        state = DedupState("approx", threshold=0.5)
        state.sync_epoch(0)
        state.group_for(_item(1, entities=(1, 2, 3)), 5)
        state.group_for(_item(2, entities=(1, 2, 3)), 5)
        assert state.stats.collapsed == 1
        state.sync_epoch(1)
        assert len(state) == 0
        _, collapsed = state.group_for(_item(3, entities=(1, 2, 3)), 5)
        assert not collapsed  # pre-epoch representative is gone
        assert state.stats.collapsed == 1  # counters describe the run

    def test_generation_reset_bounds_group_store(self):
        state = DedupState("approx", threshold=0.99, max_groups=4)
        state.sync_epoch(0)
        for i in range(9):
            state.group_for(_item(i, entities=(100 * i, 100 * i + 1)), 5)
        assert len(state) <= 4


@pytest.fixture()
def dedup_pair(ytube_small, ytube_stream):
    """(anchor, exact-dedup) twins fitted identically in scan mode."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec, copy.deepcopy(rec).set_dedup("exact")


class TestExactDedupServing:
    def test_dedup_plan_selected(self, dedup_pair):
        anchor, dedup = dedup_pair
        assert anchor.executor().plan.name == "scan-item"
        assert dedup.executor().plan.name == "scan-item-dedup"
        assert dedup.dedup_stats() is not None
        assert anchor.dedup_stats() is None

    def test_rejects_unknown_mode(self, dedup_pair):
        _, dedup = dedup_pair
        with pytest.raises(ValueError, match="dedup"):
            dedup.set_dedup("fuzzy")

    def test_fresh_id_same_content_collapses_bit_identically(
        self, dedup_pair, ytube_small
    ):
        """The case the result cache cannot collapse: a different item id
        carrying the same category/producer/entities."""
        anchor, dedup = dedup_pair
        item = ytube_small.items[0]
        reupload = _near_duplicate(item, item_id=10_000 + item.item_id)
        for rec in (anchor, dedup):
            rec.observe_item(reupload)
        first = dedup.recommend(item, 7)
        again = dedup.recommend(reupload, 7)
        assert again == first == anchor.recommend(reupload, 7)
        stats = dedup.dedup_stats()
        assert stats["collapsed"] == 1 and stats["groups"] == 1

    def test_update_invalidates(self, dedup_pair, ytube_small, ytube_stream):
        anchor, dedup = dedup_pair
        item = ytube_small.items[0]
        dedup.recommend(item, 7)
        inter = ytube_stream.partitions[2][0]
        for rec in (anchor, dedup):
            rec.update(inter, ytube_small.item(inter.item_id))
        assert dedup.recommend(item, 7) == anchor.recommend(item, 7)
        stats = dedup.dedup_stats()
        assert stats["collapsed"] == 0 and stats["groups"] == 2  # post-update recompute

    def test_observe_does_not_invalidate(self, dedup_pair, ytube_small):
        anchor, dedup = dedup_pair
        item, other = ytube_small.items[0], ytube_small.items[1]
        first = dedup.recommend(item, 7)
        for rec in (anchor, dedup):
            rec.observe_item(other)
        assert dedup.recommend(item, 7) == first == anchor.recommend(item, 7)
        assert dedup.dedup_stats()["collapsed"] == 1

    def test_batch_collapses_within_window(self, dedup_pair, ytube_small):
        anchor, dedup = dedup_pair
        a, b = ytube_small.items[0], ytube_small.items[1]
        window = [a, b, _near_duplicate(a, item_id=9_001), a, b]
        for rec in (anchor, dedup):
            rec.observe_item(window[2])
        assert dedup.recommend_batch(window, 6) == anchor.recommend_batch(window, 6)
        assert dedup.dedup_stats()["groups"] == 2  # one compute per content

    def test_composes_with_result_cache(self, dedup_pair, ytube_small):
        """Cache outermost, dedup inside: a redelivered id short-circuits
        at the cache; a fresh-id duplicate falls through and collapses."""
        anchor, dedup = dedup_pair
        dedup.enable_result_cache()
        assert dedup.executor().plan.name == "scan-item-cached-dedup"
        item = ytube_small.items[0]
        reupload = _near_duplicate(item, item_id=9_002)
        for rec in (anchor, dedup):
            rec.observe_item(reupload)
        want = [anchor.recommend(it, 6) for it in (item, item, reupload)]
        got = [dedup.recommend(it, 6) for it in (item, item, reupload)]
        assert got == want
        assert dedup.result_cache_stats()["hits"] == 1  # the redelivered id
        assert dedup.dedup_stats()["collapsed"] == 1  # the fresh-id duplicate

    def test_config_field_enables_dedup(self, ytube_small, ytube_stream):
        rec = SsRecRecommender(
            config=SsRecConfig(dedup="exact"), use_index=False, seed=1
        )
        rec.fit(ytube_small, ytube_stream.training_interactions())
        assert rec.executor().plan.name == "scan-item-dedup"

    def test_snapshot_keeps_mode_drops_memo(self, dedup_pair, ytube_small, tmp_path):
        anchor, dedup = dedup_pair
        item = ytube_small.items[0]
        dedup.recommend(item, 7)
        dedup.save(tmp_path / "snap")
        restored = SsRecRecommender.load(tmp_path / "snap")
        assert restored.executor().plan.name == "scan-item-dedup"
        stats = restored.dedup_stats()
        assert stats["collapsed"] == 0 and stats["groups"] == 0  # memo starts cold
        assert restored.recommend(item, 7) == anchor.recommend(item, 7)

    def test_obs_registry_exposes_collapse_counters(self, dedup_pair, ytube_small):
        _, dedup = dedup_pair
        item = ytube_small.items[0]
        dedup.recommend(item, 7)
        dedup.recommend(_near_duplicate(item, item_id=9_003), 7)
        dump = dedup.obs_registry().to_dict()
        counters = {metric["name"] for metric in dump["counters"]}
        gauges = {metric["name"] for metric in dump["gauges"]}
        assert {"dedup.collapsed", "dedup.groups"} <= counters
        assert "dedup.collapse_rate" in gauges


class TestApproxDedupServing:
    def test_near_duplicate_collapses_onto_representative(
        self, ytube_small, ytube_stream
    ):
        rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
        rec.fit(ytube_small, ytube_stream.training_interactions())
        rec.set_dedup("approx")
        assert rec.executor().plan.name == "scan-item-dedup-approx"
        item = next(it for it in ytube_small.items if len(it.entities) >= 3)
        jittered = _near_duplicate(
            item, item_id=9_100, entities=item.entities + (max(item.entities) + 1,)
        )
        rec.observe_item(jittered)
        first = rec.recommend(item, 7)
        assert rec.recommend(jittered, 7) == first  # representative's list
        stats = rec.dedup_stats()
        assert stats["collapsed"] == 1 and stats["groups"] == 1

    def test_within_window_members_resolve_after_founder(
        self, ytube_small, ytube_stream
    ):
        rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
        rec.fit(ytube_small, ytube_stream.training_interactions())
        rec.set_dedup("approx")
        item = next(it for it in ytube_small.items if len(it.entities) >= 3)
        jittered = _near_duplicate(
            item, item_id=9_101, entities=item.entities + (max(item.entities) + 1,)
        )
        rec.observe_item(jittered)
        ranked = rec.recommend_batch([item, jittered, item], 6)
        assert ranked[1] == ranked[0] and ranked[2] == ranked[0]
        assert rec.dedup_stats()["groups"] == 1

    def test_update_drops_group_store(self, ytube_small, ytube_stream):
        rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
        rec.fit(ytube_small, ytube_stream.training_interactions())
        rec.set_dedup("approx")
        item = ytube_small.items[0]
        rec.recommend(item, 7)
        inter = ytube_stream.partitions[2][0]
        rec.update(inter, ytube_small.item(inter.item_id))
        rec.recommend(item, 7)
        stats = rec.dedup_stats()
        assert stats["collapsed"] == 0 and stats["groups"] == 2


class TestShardedDedup:
    def test_sharded_dedup_parity_and_stats(self, fresh_ssrec, ytube_small):
        # fresh_ssrec, not fitted_ssrec: this test observes an item, and the
        # collapse assertion needs a cold expansion memo — a session-scoped
        # recommender may have frozen items[0]'s expansion pre-drift.
        with ShardedRecommender.from_trained(
            fresh_ssrec, n_shards=2, strategy="hash"
        ) as service:
            service.set_dedup("exact")
            assert service.executor().plan.name == "sharded-scan-hash-dedup"
            item = ytube_small.items[0]
            reupload = _near_duplicate(item, item_id=9_200)
            service.observe_item(reupload)
            first = service.recommend(item, 6)
            assert service.recommend(reupload, 6) == first
            assert service.dedup_stats()["collapsed"] == 1


class TestExactDedupBitParityProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        serves=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # item index
                st.sampled_from(["serve", "reupload", "update"]),
            ),
            min_size=1,
            max_size=12,
        ),
        k=st.integers(min_value=1, max_value=9),
    )
    def test_any_interleaving_is_bit_identical(
        self, fitted_ssrec, ytube_small, ytube_stream, serves, k
    ):
        """Exact mode's contract, property-tested: under arbitrary
        interleavings of serves, fresh-id re-uploads and profile updates,
        deduplicated output equals the anchor's bit for bit."""
        anchor = copy.deepcopy(fitted_ssrec)
        dedup = copy.deepcopy(fitted_ssrec).set_dedup("exact")
        updates = ytube_stream.partitions[2]
        next_id = max(it.item_id for it in ytube_small.items) + 1
        for step, (index, action) in enumerate(serves):
            item = ytube_small.items[index]
            if action == "update":
                inter = updates[step % len(updates)]
                payload = ytube_small.item(inter.item_id)
                anchor.update(inter, payload)
                dedup.update(inter, payload)
                continue
            if action == "reupload":
                item = _near_duplicate(item, item_id=next_id)
                next_id += 1
                anchor.observe_item(item)
                dedup.observe_item(item)
            assert dedup.recommend(item, k) == anchor.recommend(item, k)
