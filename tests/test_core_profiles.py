"""Tests for the CPPse user profiles (window flush semantics, stats)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profiles import ProfileEvent, ProfileStore, UserProfile


def event(category=0, producer=0, item_id=0, entities=()):
    return ProfileEvent(
        category=category, producer=producer, item_id=item_id, entities=tuple(entities)
    )


class TestWindowSemantics:
    def test_events_accumulate_in_window_until_full(self):
        profile = UserProfile(1, window_size=3)
        profile.record(event(item_id=1))
        profile.record(event(item_id=2))
        assert len(profile.window) == 2
        assert profile.n_long_events == 0

    def test_flush_moves_window_to_long_term(self):
        profile = UserProfile(1, window_size=3)
        flushed = []
        for i in range(3):
            flushed = profile.record(event(item_id=i))
        assert len(flushed) == 3
        assert profile.window == []
        assert profile.n_long_events == 3
        assert [ev.item_id for ev in profile.long_term] == [0, 1, 2]

    def test_record_returns_empty_before_flush(self):
        profile = UserProfile(1, window_size=2)
        assert profile.record(event()) == []

    def test_version_increments_on_every_record(self):
        profile = UserProfile(1, window_size=2)
        v0 = profile.version
        profile.record(event())
        profile.record(event())
        assert profile.version == v0 + 2

    def test_window_size_one_flushes_immediately(self):
        profile = UserProfile(1, window_size=1)
        profile.record(event(item_id=9))
        assert profile.n_long_events == 1 and profile.window == []

    def test_invalid_window_size_rejected(self):
        with pytest.raises(ValueError):
            UserProfile(1, window_size=0)


class TestCounters:
    def test_long_term_counters_track_flushed_events_only(self):
        profile = UserProfile(1, window_size=2)
        profile.record(event(category=3, producer=7, entities=(1, 1, 2)))
        assert profile.category_counts == {}
        profile.record(event(category=3, producer=8, entities=(2,)))
        assert profile.category_counts[3] == 2
        assert profile.producer_counts[7] == 1 and profile.producer_counts[8] == 1
        assert profile.entity_counts[1] == 2 and profile.entity_counts[2] == 2
        assert profile.n_entity_tokens == 4

    def test_category_vector_normalized(self):
        profile = UserProfile(1, window_size=1)
        profile.record(event(category=0))
        profile.record(event(category=0))
        profile.record(event(category=2))
        vec = profile.category_vector(4)
        assert vec == pytest.approx([2 / 3, 0.0, 1 / 3, 0.0])

    def test_category_vector_empty_profile_is_zero(self):
        assert UserProfile(1).category_vector(3) == [0.0, 0.0, 0.0]


class TestBootstrap:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=7),
        st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=40),
    )
    def test_bootstrap_equals_sequential_record(self, window_size, categories):
        """bootstrap() must reproduce record()-by-record state exactly."""
        events = [event(category=c, item_id=i) for i, c in enumerate(categories)]
        sequential = UserProfile(1, window_size=window_size)
        for ev in events:
            sequential.record(ev)
        bulk = UserProfile(1, window_size=window_size)
        bulk.bootstrap(events)
        assert [e.item_id for e in bulk.long_term] == [e.item_id for e in sequential.long_term]
        assert [e.item_id for e in bulk.window] == [e.item_id for e in sequential.window]
        assert bulk.category_counts == sequential.category_counts
        assert bulk.n_entity_tokens == sequential.n_entity_tokens


class TestViews:
    def test_recent_sequence_prefers_window(self):
        profile = UserProfile(1, window_size=3)
        for i in range(4):
            profile.record(event(category=i % 2, item_id=i))
        # 3 flushed, 1 in window
        assert profile.recent_sequence() == [(1, 3)]

    def test_recent_sequence_falls_back_to_long_tail(self):
        profile = UserProfile(1, window_size=2)
        for i in range(4):
            profile.record(event(category=0, item_id=i))
        assert profile.window == []
        assert [iid for _, iid in profile.recent_sequence()] == [2, 3]

    def test_long_term_sequence_truncation(self):
        profile = UserProfile(1, window_size=1)
        for i in range(10):
            profile.record(event(item_id=i))
        assert len(profile.long_term_sequence(max_events=4)) == 4
        assert profile.long_term_sequence(max_events=4)[0][1] == 6

    def test_all_events_concatenates(self):
        profile = UserProfile(1, window_size=3)
        for i in range(4):
            profile.record(event(item_id=i))
        assert [e.item_id for e in profile.all_events()] == [0, 1, 2, 3]


class TestProfileStore:
    def test_get_or_create_and_contains(self):
        store = ProfileStore(window_size=2)
        assert 5 not in store
        profile = store.get_or_create(5)
        assert 5 in store and store.get(5) is profile
        assert len(store) == 1

    def test_record_creates_new_users(self):
        store = ProfileStore(window_size=1)
        profile, flushed = store.record(9, event(item_id=1))
        assert profile.user_id == 9
        assert len(flushed) == 1

    def test_user_ids_sorted(self):
        store = ProfileStore()
        for uid in (5, 2, 9):
            store.get_or_create(uid)
        assert store.user_ids() == [2, 5, 9]

    def test_iteration_yields_profiles(self):
        store = ProfileStore()
        store.get_or_create(1)
        store.get_or_create(2)
        assert {p.user_id for p in store} == {1, 2}
