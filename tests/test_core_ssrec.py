"""Tests for the SsRecRecommender facade."""

import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.schema import Interaction


class TestLifecycle:
    def test_operations_require_fit(self, ytube_small):
        rec = SsRecRecommender()
        with pytest.raises(RuntimeError):
            rec.recommend(ytube_small.items[0], 5)
        with pytest.raises(RuntimeError):
            rec.observe_item(ytube_small.items[0])

    def test_fit_builds_all_components(self, fitted_ssrec):
        assert fitted_ssrec.bihmm is not None
        assert fitted_ssrec.interest is not None
        assert fitted_ssrec.scorer is not None
        assert fitted_ssrec.matcher is not None
        assert fitted_ssrec.index is None  # scan mode

    def test_fit_with_index_builds_index(self, fitted_ssrec_indexed):
        assert fitted_ssrec_indexed.index is not None

    def test_profiles_created_for_all_consumers(self, fitted_ssrec, ytube_small):
        assert len(fitted_ssrec.profiles) == len(ytube_small.consumer_ids)


class TestRecommend:
    def test_returns_k_ranked_users(self, fitted_ssrec, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        out = fitted_ssrec.recommend(item, 7)
        assert len(out) == 7
        scores = [s for _, s in out]
        assert scores == sorted(scores, reverse=True)

    def test_default_k_from_config(self, fitted_ssrec, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        assert len(fitted_ssrec.recommend(item)) == fitted_ssrec.config.default_k

    def test_recommended_users_are_consumers(self, fitted_ssrec, ytube_small, ytube_stream):
        item = ytube_stream.items_in_partition(2)[1]
        consumers = set(ytube_small.consumer_ids)
        assert all(u in consumers for u, _ in fitted_ssrec.recommend(item, 10))

    def test_index_and_scan_agree_on_top_scores(
        self, fitted_ssrec, fitted_ssrec_indexed, ytube_stream
    ):
        for item in ytube_stream.items_in_partition(2)[:10]:
            via_index = fitted_ssrec_indexed.recommend(item, 5)
            probed = fitted_ssrec_indexed.index.users_in_probed_trees(item)
            via_scan = [
                (u, s)
                for u, s in fitted_ssrec.matcher.top_k(item, len(fitted_ssrec.profiles))
                if u in probed
            ][:5]
            assert [round(s, 9) for _, s in via_index] == [
                round(s, 9) for _, s in via_scan
            ]


class TestStreamingUpdates:
    def test_update_records_into_profile(self, fresh_ssrec, ytube_small):
        inter = ytube_small.interactions[-1]
        item = ytube_small.item(inter.item_id)
        profile = fresh_ssrec.profiles.get(inter.user_id)
        version_before = profile.version
        fresh_ssrec.update(inter, item)
        assert profile.version == version_before + 1

    def test_update_unknown_user_creates_profile(self, fresh_ssrec, ytube_small):
        inter = Interaction(
            user_id=999_999,
            item_id=ytube_small.items[0].item_id,
            category=ytube_small.items[0].category,
            producer=ytube_small.items[0].producer,
            timestamp=1.0,
        )
        fresh_ssrec.update(inter, ytube_small.items[0])
        assert fresh_ssrec.profiles.get(999_999) is not None

    def test_observe_item_advances_producer_layer(self, fresh_ssrec, ytube_small):
        from repro.datasets.schema import SocialItem

        base = ytube_small.items[0]
        new_item = SocialItem(
            item_id=10**7,
            category=base.category,
            producer=base.producer,
            entities=base.entities,
            text=base.text,
            timestamp=1.0,
        )
        fresh_ssrec.observe_item(new_item)
        layer = fresh_ssrec.bihmm.producer_layer
        assert layer.state_of_item(10**7) != layer.unknown_state or (
            base.producer not in layer.models
        )

    def test_periodic_maintenance_triggers(self, fresh_ssrec_indexed, ytube_small):
        rec = fresh_ssrec_indexed
        rec.maintenance_interval = 5
        inter = ytube_small.interactions[-1]
        item = ytube_small.item(inter.item_id)
        for _ in range(5):
            rec.update(inter, item)
        assert rec._updates_since_maintenance == 0  # flushed by the trigger
        assert not rec._maintenance_pending

    def test_recommend_flushes_pending_maintenance(self, fresh_ssrec_indexed, ytube_stream):
        rec = fresh_ssrec_indexed
        inter = ytube_stream.partitions[2][0]
        item = ytube_stream.dataset.item(inter.item_id)
        rec.update(inter, item)
        assert rec._maintenance_pending
        rec.recommend(ytube_stream.items_in_partition(2)[0], 3)
        assert not rec._maintenance_pending

    def test_run_maintenance_without_index_is_noop(self, fresh_ssrec):
        assert fresh_ssrec.run_maintenance() == 0


class TestConfigVariants:
    def test_window_size_propagates_to_profiles(self, ytube_small, ytube_stream):
        rec = SsRecRecommender(config=SsRecConfig(window_size=3), seed=1)
        rec.fit(ytube_small, ytube_stream.training_interactions())
        assert all(p.window_size == 3 for p in rec.profiles)

    def test_fit_requires_consumer_history(self, ytube_small):
        rec = SsRecRecommender()
        with pytest.raises(ValueError, match="training interactions"):
            rec.fit(ytube_small, train_interactions=ytube_small.interactions[:1])
