"""Tests for the command-line experiment runner."""

import pytest

from repro.eval.__main__ import build_parser, main


class TestParser:
    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.dataset == "YTube"
        assert args.scale == "small"
        assert args.min_truth == 3

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--dataset", "Netflix"])


class TestMain:
    def test_table3_runs_and_prints(self, capsys):
        assert main(["table3", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "SynMLens" in out

    def test_fig7_runs_and_prints(self, capsys):
        assert main(["fig7", "--dataset", "YTube"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "lambda" in out

    def test_fig9_on_mlens(self, capsys):
        assert main(["fig9", "--dataset", "MLens"]) == 0
        out = capsys.readouterr().out
        assert "ssRec-nu" in out

    def test_sharded_runs_and_prints(self, capsys):
        assert main(["sharded", "--dataset", "YTube"]) == 0
        out = capsys.readouterr().out
        assert "Sharded serving" in out
        assert "parity with single index: exact" in out
