"""Tests for the command-line experiment runner."""

from dataclasses import dataclass, field

import pytest

from repro.eval import experiments as ex
from repro.eval.__main__ import ALL_EXPERIMENTS, build_parser, main


@dataclass
class _StubResult:
    """Minimal stand-in for any driver result object."""

    text: str = "stub output"
    total_divergences: int = 0
    exact_parity_ok: bool = True

    def to_text(self) -> str:
        return self.text


@dataclass
class _Recorder:
    """Replaces one ``ex.run_*`` driver; records how it was called."""

    result: _StubResult = field(default_factory=_StubResult)
    calls: list = field(default_factory=list)

    def __call__(self, *args, **kwargs):
        self.calls.append((args, kwargs))
        return self.result

    @property
    def kwargs(self) -> dict:
        assert len(self.calls) == 1, "driver expected exactly one call"
        return self.calls[0][1]


class TestParser:
    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.dataset == "YTube"
        assert args.scale == "small"
        assert args.min_truth == 3

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--dataset", "Netflix"])


class TestMain:
    def test_table3_runs_and_prints(self, capsys):
        assert main(["table3", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "SynMLens" in out

    def test_fig7_runs_and_prints(self, capsys):
        assert main(["fig7", "--dataset", "YTube"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "lambda" in out

    def test_fig9_on_mlens(self, capsys):
        assert main(["fig9", "--dataset", "MLens"]) == 0
        out = capsys.readouterr().out
        assert "ssRec-nu" in out

    def test_sharded_runs_and_prints(self, capsys):
        assert main(["sharded", "--dataset", "YTube"]) == 0
        out = capsys.readouterr().out
        assert "Sharded serving" in out
        assert "parity with single index: exact" in out


class TestDispatch:
    """Every subcommand reaches its driver with the CLI knobs threaded
    through (drivers stubbed out — dispatch is what is under test)."""

    @pytest.fixture
    def fake_datasets(self, monkeypatch):
        datasets = {name: object() for name in ("YTube", "SynYTube", "MLens", "SynMLens")}
        recorder = _Recorder()

        def make_datasets(scale, seed):
            recorder.calls.append(((scale,), {"seed": seed}))
            return datasets

        monkeypatch.setattr(ex, "make_datasets", make_datasets)
        return datasets, recorder

    @pytest.mark.parametrize(
        "experiment,driver",
        [
            ("fig5", "run_fig5"),
            ("fig6", "run_fig6"),
            ("fig7", "run_fig7"),
            ("fig8", "run_fig8"),
            ("fig9", "run_fig9"),
            ("fig10", "run_fig10"),
            ("batch", "run_batch_throughput"),
            ("sharded", "run_sharded_throughput"),
        ],
    )
    def test_single_dataset_dispatch(
        self, monkeypatch, capsys, fake_datasets, experiment, driver
    ):
        datasets, dataset_recorder = fake_datasets
        recorder = _Recorder()
        monkeypatch.setattr(ex, driver, recorder)
        assert main([experiment, "--dataset", "MLens", "--seed", "11"]) == 0
        assert "stub output" in capsys.readouterr().out
        args, kwargs = recorder.calls[0]
        assert args[0] is datasets["MLens"]
        assert kwargs["seed"] == 11
        # The same --seed drove the dataset generators.
        assert dataset_recorder.calls[0][1]["seed"] == 11

    def test_fig11_dispatch_gets_all_datasets(
        self, monkeypatch, capsys, fake_datasets
    ):
        datasets, _ = fake_datasets
        recorder = _Recorder()
        monkeypatch.setattr(ex, "run_fig11", recorder)
        assert main(["fig11", "--seed", "3"]) == 0
        args, kwargs = recorder.calls[0]
        assert args[0] is datasets
        assert kwargs["seed"] == 3

    def test_table2_threads_seed_into_generator(self, monkeypatch, capsys):
        recorder = _Recorder()
        monkeypatch.setattr(ex, "run_table2", recorder)
        seen = {}

        def fake_generate(config):
            seen["seed"] = config.seed
            return object()

        import repro.eval.__main__ as cli

        monkeypatch.setattr(cli, "generate_ytube", fake_generate)
        assert main(["table2", "--seed", "23"]) == 0
        assert seen["seed"] == 23

    def test_min_truth_threaded(self, monkeypatch, capsys, fake_datasets):
        recorder = _Recorder()
        monkeypatch.setattr(ex, "run_fig8", recorder)
        assert main(["fig8", "--min-truth", "5"]) == 0
        assert recorder.kwargs["min_truth"] == 5

    def test_all_experiments_covered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "batch", "sharded", "cache", "dedup",
            "conformance", "serve", "loadgen",
        }

    def test_cache_dispatch(self, monkeypatch, capsys, fake_datasets):
        datasets, _ = fake_datasets
        recorder = _Recorder()
        monkeypatch.setattr(ex, "run_result_cache", recorder)
        assert main(["cache", "--dataset", "MLens", "--seed", "11"]) == 0
        assert recorder.kwargs["base"] is datasets["MLens"]
        assert recorder.kwargs["seed"] == 11

    def test_dedup_dispatch(self, monkeypatch, capsys, fake_datasets):
        datasets, _ = fake_datasets
        recorder = _Recorder(result=_StubResult(exact_parity_ok=True))
        monkeypatch.setattr(ex, "run_dedup", recorder)
        assert main(["dedup", "--dataset", "MLens", "--seed", "11"]) == 0
        assert "stub output" in capsys.readouterr().out
        assert recorder.kwargs["base"] is datasets["MLens"]
        assert recorder.kwargs["seed"] == 11

    def test_dedup_nonzero_exit_on_exact_divergence(
        self, monkeypatch, capsys, fake_datasets
    ):
        recorder = _Recorder(result=_StubResult(exact_parity_ok=False))
        monkeypatch.setattr(ex, "run_dedup", recorder)
        # CI gates on this: an exact-mode divergence must fail the process.
        assert main(["dedup"]) == 1


class TestConformanceCommand:
    def test_threads_seed_k_scenarios_events(self, monkeypatch, capsys):
        recorder = _Recorder()
        monkeypatch.setattr(ex, "run_conformance", recorder)
        assert (
            main(
                [
                    "conformance",
                    "--seed", "13",
                    "--k", "4",
                    "--scenarios", "bursty_uploads,abrupt_drift",
                    "--events", "123",
                ]
            )
            == 0
        )
        kwargs = recorder.kwargs
        assert kwargs["seed"] == 13
        assert kwargs["k"] == 4
        assert kwargs["scenarios"] == ["bursty_uploads", "abrupt_drift"]
        assert kwargs["max_events"] == 123
        assert "stub output" in capsys.readouterr().out

    def test_default_scenarios_is_full_catalog(self, monkeypatch, capsys):
        recorder = _Recorder()
        monkeypatch.setattr(ex, "run_conformance", recorder)
        assert main(["conformance"]) == 0
        assert recorder.kwargs["scenarios"] is None

    def test_nonzero_exit_on_divergence(self, monkeypatch, capsys):
        recorder = _Recorder(result=_StubResult(total_divergences=2))
        monkeypatch.setattr(ex, "run_conformance", recorder)
        # CI gates on this: any divergence must fail the process.
        assert main(["conformance"]) == 1
        assert "stub output" in capsys.readouterr().out

    def test_threads_registry_paths(self, monkeypatch, capsys):
        recorder = _Recorder()
        monkeypatch.setattr(ex, "run_conformance", recorder)
        assert (
            main(["conformance", "--paths", "scan-item,index-batch-cached"]) == 0
        )
        assert recorder.kwargs["paths"] == ["scan-item", "index-batch-cached"]

    def test_default_paths_is_full_registry(self, monkeypatch, capsys):
        recorder = _Recorder()
        monkeypatch.setattr(ex, "run_conformance", recorder)
        assert main(["conformance"]) == 0
        assert recorder.kwargs["paths"] is None

    def test_unknown_path_fails(self, capsys):
        # Threads through to the runner's validation: unknown plan names
        # must fail loudly, not silently serve a subset.
        with pytest.raises(ValueError, match="unknown conformance"):
            main(["conformance", "--paths", "quantum-tunnel", "--events", "10"])

    def test_list_paths_prints_registry(self, capsys):
        from repro.exec import PLAN_REGISTRY

        assert main(["conformance", "--list-paths"]) == 0
        out = capsys.readouterr().out
        for name in PLAN_REGISTRY.names():
            assert name in out
