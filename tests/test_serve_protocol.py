"""Wire protocol: property-based round-trips and adversarial decoding.

Two families, mirroring the protocol's two obligations:

- **Round-trip**: every message type — all six request ops with
  hypothesis-generated domain objects (finite floats only; the wire is
  standard JSON) and every reply status — must survive
  encode -> frame-split -> decode bit for bit, under arbitrary
  chunking of the byte stream (the decoder is incremental).
- **Rejection**: torn frames, oversized length prefixes, malformed
  JSON, unknown protocol versions/kinds/ops and ill-typed fields must
  all raise a typed :class:`ProtocolError` — never hang, never leak a
  random exception.
"""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.schema import Interaction, SocialItem
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    FrameDecoder,
    ProtocolError,
    Reply,
    Request,
    decode_payload,
    decode_reply,
    decode_request,
    encode_frame,
    encode_reply,
    encode_request,
    interaction_from_wire,
    interaction_to_wire,
    item_from_wire,
    item_to_wire,
    ranked_from_wire,
    ranked_to_wire,
)

# ----------------------------------------------------------------------
# Strategies: JSON-representable domain objects (finite floats only)
# ----------------------------------------------------------------------
ids = st.integers(min_value=0, max_value=2**40)
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)

items = st.builds(
    SocialItem,
    item_id=ids,
    category=st.integers(min_value=0, max_value=500),
    producer=ids,
    entities=st.tuples(*[st.integers(min_value=0, max_value=10_000)] * 3).map(
        lambda t: t[: t[0] % 4]
    ),
    text=st.text(max_size=40),
    timestamp=finite_floats,
)

interactions = st.builds(
    Interaction,
    user_id=ids,
    item_id=ids,
    category=st.integers(min_value=0, max_value=500),
    producer=ids,
    timestamp=finite_floats,
)

ranked_lists = st.lists(st.tuples(ids, finite_floats), max_size=8).map(
    lambda pairs: [(uid, float(score)) for uid, score in pairs]
)

optional_k = st.one_of(st.none(), st.integers(min_value=0, max_value=1000))


def requests_for(op: str):
    """A strategy of wire-shaped request payloads for ``op``."""
    if op == "observe":
        return st.builds(lambda it: {"item": item_to_wire(it)}, items)
    if op == "update":
        return st.builds(
            lambda inter, it: {
                "interaction": interaction_to_wire(inter),
                "item": None if it is None else item_to_wire(it),
            },
            interactions,
            st.one_of(st.none(), items),
        )
    if op == "recommend":
        return st.builds(
            lambda it, k: {"item": item_to_wire(it), "k": k}, items, optional_k
        )
    if op == "recommend_batch":
        return st.builds(
            lambda its, k: {"items": [item_to_wire(it) for it in its], "k": k},
            st.lists(items, max_size=5),
            optional_k,
        )
    if op == "snapshot":
        return st.builds(
            lambda path, reload_flag: {"path": path, "reload": reload_flag},
            st.text(min_size=1, max_size=30),
            st.booleans(),
        )
    return st.just({})  # stats


any_request = st.sampled_from(REQUEST_OPS).flatmap(
    lambda op: st.tuples(st.just(op), requests_for(op), ids)
)


def roundtrip(frame: bytes, chunk: int) -> dict:
    """Feed one frame through an incremental decoder in ``chunk``-sized
    pieces and return the single decoded message."""
    decoder = FrameDecoder()
    messages = []
    for start in range(0, len(frame), chunk):
        messages.extend(decoder.feed(frame[start : start + chunk]))
    decoder.close()  # nothing buffered — the frame was whole
    assert len(messages) == 1
    return messages[0]


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @given(any_request, st.integers(min_value=1, max_value=7))
    @settings(max_examples=150, deadline=None)
    def test_every_request_op_roundtrips(self, spec, chunk):
        op, payload, request_id = spec
        frame = encode_request(Request(op, request_id, payload))
        decoded = decode_request(roundtrip(frame, chunk))
        assert decoded.op == op
        assert decoded.request_id == request_id
        # The decoded payload holds typed domain objects equal (bitwise —
        # dataclass equality compares the float fields exactly) to what
        # was encoded.
        if op == "observe":
            assert decoded.payload["item"] == item_from_wire(payload["item"])
        elif op == "update":
            assert decoded.payload["interaction"] == interaction_from_wire(
                payload["interaction"]
            )
        elif op == "recommend":
            assert decoded.payload["k"] == payload["k"]
            assert item_to_wire(decoded.payload["item"]) == payload["item"]
        elif op == "recommend_batch":
            assert [item_to_wire(it) for it in decoded.payload["items"]] == (
                payload["items"]
            )
        elif op == "snapshot":
            assert decoded.payload == payload

    @given(ids, ranked_lists, st.integers(min_value=1, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_ok_reply_roundtrips_scores_bitwise(self, request_id, ranked, chunk):
        reply = Reply(request_id, "ok", result=ranked_to_wire(ranked))
        decoded = decode_reply(roundtrip(encode_reply(reply), chunk))
        assert decoded.request_id == request_id
        assert decoded.status == "ok"
        # float repr round-trips binary64 exactly: not one ULP moves.
        assert ranked_from_wire(decoded.result) == ranked

    @given(ids, st.sampled_from(["error", "overload"]), st.text(max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_failure_replies_roundtrip(self, request_id, status, error):
        decoded = decode_reply(roundtrip(encode_reply(
            Reply(request_id, status, error=error)
        ), 5))
        assert (decoded.request_id, decoded.status, decoded.error) == (
            request_id, status, error
        )

    @given(items)
    @settings(max_examples=60, deadline=None)
    def test_item_wire_shape_is_lossless(self, item):
        assert item_from_wire(item_to_wire(item)) == item

    @given(interactions)
    @settings(max_examples=60, deadline=None)
    def test_interaction_wire_shape_is_lossless(self, interaction):
        assert interaction_from_wire(interaction_to_wire(interaction)) == interaction

    @given(st.lists(st.binary(min_size=0, max_size=3), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_chunking_yields_all_frames(self, paddings):
        """Many frames in one stream, split at arbitrary points."""
        frames = [
            encode_request(Request("stats", i, {})) for i in range(len(paddings) + 2)
        ]
        stream = b"".join(frames)
        decoder = FrameDecoder()
        out = []
        # Cut the stream at pseudo-arbitrary points derived from the data.
        cut = 1
        position = 0
        for padding in paddings:
            cut = 1 + (cut + sum(padding)) % 9
            out.extend(decoder.feed(stream[position : position + cut]))
            position += cut
        out.extend(decoder.feed(stream[position:]))
        decoder.close()
        assert [m["id"] for m in out] == list(range(len(frames)))


# ----------------------------------------------------------------------
# Adversarial rejection
# ----------------------------------------------------------------------
class TestRejection:
    def test_torn_frame_raises_on_close(self):
        frame = encode_request(Request("stats", 1, {}))
        decoder = FrameDecoder()
        assert list(decoder.feed(frame[:-3])) == []
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.close()

    @given(st.binary(min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_any_partial_frame_is_torn(self, prefix):
        decoder = FrameDecoder()
        list(decoder.feed(prefix))
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.close()

    def test_oversized_length_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(ProtocolError, match="exceeds"):
            list(decoder.feed(struct.pack(">I", 65)))
        # Rejection happened on the 4-byte prefix alone — no payload was
        # ever needed (a corrupt length cannot make the peer allocate).
        assert decoder.buffered == 4

    def test_encode_rejects_oversized_frame(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"kind": "request", "blob": "x" * 100}, max_frame_bytes=64)

    @given(st.binary(min_size=0, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_garbage_payload_never_escapes_protocolerror(self, garbage):
        """Any byte soup framed with a correct length either parses as a
        versioned message or dies as a ProtocolError — nothing else."""
        framed = struct.pack(">I", len(garbage)) + garbage
        decoder = FrameDecoder()
        try:
            for message in decoder.feed(framed):
                assert message["v"] == PROTOCOL_VERSION
        except ProtocolError:
            pass

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="bad JSON"):
            decode_payload(b"{not json")

    def test_non_object_json_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            decode_payload(b"[1,2,3]")

    @pytest.mark.parametrize("version", [None, 0, 2, "1", 1.5])
    def test_unknown_version_rejected(self, version):
        raw = json.dumps({"v": version, "kind": "request", "op": "stats", "id": 1})
        with pytest.raises(ProtocolError, match="version"):
            decode_payload(raw.encode())

    def test_unknown_kind_rejected(self):
        raw = json.dumps({"v": PROTOCOL_VERSION, "kind": "gossip"})
        with pytest.raises(ProtocolError, match="kind"):
            decode_payload(raw.encode())

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request op"):
            decode_request({"v": PROTOCOL_VERSION, "kind": "request",
                            "op": "teleport", "id": 1})
        with pytest.raises(ProtocolError, match="unknown request op"):
            encode_request(Request("teleport", 1, {}))

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError, match="unknown reply status"):
            decode_reply({"v": PROTOCOL_VERSION, "kind": "reply", "id": 1,
                          "status": "maybe"})
        with pytest.raises(ProtocolError, match="unknown reply status"):
            encode_reply(Reply(1, "maybe"))

    def test_kind_mismatch_rejected(self):
        request = {"v": PROTOCOL_VERSION, "kind": "request", "op": "stats", "id": 1}
        reply = {"v": PROTOCOL_VERSION, "kind": "reply", "id": 1, "status": "ok",
                 "result": None, "error": ""}
        with pytest.raises(ProtocolError, match="expected a reply"):
            decode_reply(request)
        with pytest.raises(ProtocolError, match="expected a request"):
            decode_request(reply)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("item_id", "7"),
            ("item_id", 7.5),
            ("item_id", True),  # bool is not an id on this wire
            ("category", None),
            ("entities", 3),
            ("text", 9),
            ("timestamp", "now"),
        ],
    )
    def test_ill_typed_item_fields_rejected(self, field, value):
        wire = item_to_wire(SocialItem(1, 2, 3, (4,), "t", 5.0))
        wire[field] = value
        with pytest.raises(ProtocolError, match=f"item.{field}"):
            item_from_wire(wire)

    def test_negative_or_ill_typed_ids_rejected(self):
        base = {"v": PROTOCOL_VERSION, "kind": "request", "op": "stats"}
        for bad in (-1, "3", None, True):
            with pytest.raises(ProtocolError):
                decode_request({**base, "id": bad})

    def test_bad_k_rejected(self):
        wire = {"v": PROTOCOL_VERSION, "kind": "request", "op": "recommend",
                "id": 1, "item": item_to_wire(SocialItem(1, 2, 3, (), "t", 0.0))}
        for bad in (-1, "5", 2.5, True):
            with pytest.raises(ProtocolError, match="k"):
                decode_request({**wire, "k": bad})

    def test_bad_snapshot_reload_flag_rejected(self):
        with pytest.raises(ProtocolError, match="reload"):
            decode_request({"v": PROTOCOL_VERSION, "kind": "request",
                            "op": "snapshot", "id": 1, "path": "p", "reload": 1})

    def test_malformed_ranked_entries_rejected(self):
        with pytest.raises(ProtocolError, match="pair"):
            ranked_from_wire([[1, 2.0, 3.0]])
        with pytest.raises(ProtocolError, match="ranked"):
            ranked_from_wire("nope")

    def test_nan_scores_refused_at_encode(self):
        # At the wire boundary where scores enter...
        with pytest.raises(ProtocolError, match="unencodable"):
            ranked_to_wire([(1, float("nan"))])
        with pytest.raises(ProtocolError, match="unencodable"):
            ranked_to_wire([(1, float("inf"))])
        # ...and on decode, where the stdlib parser would otherwise admit
        # a hostile peer's NaN/Infinity literals.
        with pytest.raises(ProtocolError, match="finite"):
            ranked_from_wire([[1, float("nan")]])

    def test_default_limit_is_sane(self):
        assert 0 < DEFAULT_MAX_FRAME_BYTES <= 2**31
