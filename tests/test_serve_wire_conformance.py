"""Wire conformance: the served-* path family through a live socket.

The differential harness's strongest claim about the network layer:
replaying adversarial scenarios through a **live server** — every
observe, update and recommend crossing the framed JSON protocol, windows
arriving as pipelined requests that the server's dynamic coalescer
regroups — produces results **bit-identical** to the in-process anchor
paths.  ``served-scan-batch`` additionally takes one mid-stream
server-side snapshot + owner swap and must keep matching the
(never-reloaded) anchor afterwards.

The family is registry-derived: the ``served-*`` plans are registered
like any other, so they appear in ``--list-paths``, in
:data:`CONFORMANCE_PATHS`, and in every default conformance run with no
second catalog to maintain.
"""

import pytest

from repro.exec import PLAN_REGISTRY
from repro.sim import CONFORMANCE_PATHS, ConformanceRunner, ScenarioGenerator

#: The scenarios this suite replays through the wire: out-of-order
#: at-least-once delivery (duplicates crossing the coalescer) and upload
#: bursts (windows larger than the arrival pattern the coalescer sees).
WIRE_SCENARIOS = ("duplicate_out_of_order", "bursty_uploads")

#: Anchors first (they produce the bitwise reference), then the wire
#: family judged against them.
WIRE_PATHS = ("scan-item", "index-item", "served-scan-batch", "served-index-item")


@pytest.fixture(scope="module")
def reports(ytube_small):
    generator = ScenarioGenerator(base=ytube_small, seed=5, max_events=240)
    runner = ConformanceRunner(
        k=6, window_size=6, paths=WIRE_PATHS, snapshot_window=1
    )
    return {
        name: runner.run(generator.generate(name)) for name in WIRE_SCENARIOS
    }


class TestWireBitParity:
    def test_zero_divergences_through_the_socket(self, reports):
        for name, report in reports.items():
            assert report.conformant, f"{name}:\n{report.to_text()}"

    def test_wire_paths_actually_served(self, reports):
        for report in reports.values():
            for path in ("served-scan-batch", "served-index-item"):
                assert report.paths[path].n_windows > 0
                assert report.paths[path].n_queries > 0

    def test_snapshot_reloaded_behind_live_connection(self, reports):
        """One server-side snapshot + owner swap mid-stream; the reloaded
        owner must keep matching the never-reloaded anchor bit for bit
        (the zero-divergence assertion covers the matching; this pins
        that the swap actually happened)."""
        for report in reports.values():
            assert report.paths["served-scan-batch"].snapshot_reloads == 1
            assert report.paths["served-index-item"].snapshot_reloads == 0


class TestWireFamilyRegistration:
    """The served-* family is a first-class registry citizen."""

    def test_in_conformance_catalog(self):
        assert "served-scan-batch" in CONFORMANCE_PATHS
        assert "served-index-item" in CONFORMANCE_PATHS

    def test_plans_are_wire_and_anchored(self):
        scan = PLAN_REGISTRY.get("served-scan-batch")
        index = PLAN_REGISTRY.get("served-index-item")
        assert scan.is_wire and index.is_wire
        # Wire plans are always anchored: bitwise judgement, never the
        # tie-tolerant oracle comparison.
        assert scan.anchor == "scan-item"
        assert index.anchor == "index-item"
        assert scan.batching == "micro-batch"  # coalescing arm
        assert index.batching == "item"  # per-request dispatch arm

    def test_list_paths_shows_served_family(self, capsys):
        """``python -m repro.eval conformance --list-paths`` prints it."""
        from repro.eval.__main__ import main

        assert main(["conformance", "--list-paths"]) == 0
        out = capsys.readouterr().out
        assert "served-scan-batch" in out
        assert "served-index-item" in out
        assert "wire" in out
