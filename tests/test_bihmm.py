"""Tests for the Bi-Layer HMM and its producer layer."""

import numpy as np
import pytest

from repro.hmm.bihmm import BiHMM, ProducerLayer


def cycling_producer_items(pid_prefix, cats, n, start_id):
    """Items whose categories cycle through ``cats`` in creation order."""
    return [(start_id + i, cats[i % len(cats)]) for i in range(n)]


@pytest.fixture()
def two_producers():
    return {
        "A": cycling_producer_items("A", [0, 0, 1], 120, 0),
        "B": cycling_producer_items("B", [2, 2, 1], 120, 10_000),
    }


class TestProducerLayer:
    def test_fit_trains_eligible_producers(self, two_producers):
        layer = ProducerLayer(n_categories=3, n_states=3, seed=0)
        results = layer.fit(two_producers)
        assert set(results) == {"A", "B"}
        assert set(layer.models) == {"A", "B"}

    def test_short_sequences_left_untrained(self):
        layer = ProducerLayer(n_categories=3, n_states=3, min_sequence_length=5, seed=0)
        layer.fit({"tiny": [(1, 0), (2, 1)]})
        assert "tiny" not in layer.models
        assert layer.state_of_item(1) == layer.unknown_state

    def test_canonical_alphabet_is_category_space(self):
        layer = ProducerLayer(n_categories=7, n_states=3, seed=0)
        assert layer.unknown_state == 7
        assert layer.n_input_symbols == 8

    def test_item_states_within_alphabet(self, two_producers):
        layer = ProducerLayer(n_categories=3, n_states=3, seed=0)
        layer.fit(two_producers)
        for items in two_producers.values():
            for item_id, _ in items:
                z = layer.state_of_item(item_id)
                assert 0 <= z <= layer.unknown_state

    def test_unknown_item_maps_to_unknown(self, two_producers):
        layer = ProducerLayer(n_categories=3, n_states=3, seed=0)
        layer.fit(two_producers)
        assert layer.state_of_item("nope") == layer.unknown_state

    def test_decode_new_item_for_unknown_producer(self, two_producers):
        layer = ProducerLayer(n_categories=3, n_states=3, seed=0)
        layer.fit(two_producers)
        assert layer.decode_new_item("ghost", 1) == layer.unknown_state

    def test_observe_created_item_memoizes(self, two_producers):
        layer = ProducerLayer(n_categories=3, n_states=3, seed=0)
        layer.fit(two_producers)
        z = layer.observe_created_item("A", 999_999, 0)
        assert layer.state_of_item(999_999) == z
        assert 0 <= z <= layer.unknown_state

    def test_next_state_distribution_sums_to_one(self, two_producers):
        layer = ProducerLayer(n_categories=3, n_states=3, seed=0)
        layer.fit(two_producers)
        dist = layer.next_state_distribution("A")
        assert dist.shape == (layer.n_input_symbols,)
        assert dist.sum() == pytest.approx(1.0)

    def test_next_state_distribution_unknown_producer(self):
        layer = ProducerLayer(n_categories=3, n_states=3, seed=0)
        dist = layer.next_state_distribution("ghost")
        assert dist[layer.unknown_state] == pytest.approx(1.0)


class TestBiHMM:
    def _consumer_sequence(self, producers, rng, length=80):
        """A consumer riding producer A then B alternately."""
        seq = []
        pa = pb = 0
        riding = "A"
        for _ in range(length):
            if rng.random() < 0.12:
                riding = "B" if riding == "A" else "A"
            if riding == "A":
                item_id, cat = producers["A"][pa]
                pa += 1
            else:
                item_id, cat = producers["B"][pb]
                pb += 1
            seq.append((cat, item_id))
        return seq

    def test_fit_and_predict_shapes(self, two_producers):
        rng = np.random.default_rng(0)
        seq = self._consumer_sequence(two_producers, rng)
        bi = BiHMM(n_categories=3, seed=0)
        result = bi.fit(two_producers, [seq])
        assert result.n_iter >= 1
        dist = bi.predict_next_distribution(seq)
        assert dist.shape == (3,)
        assert dist.sum() == pytest.approx(1.0)

    def test_lagged_trace_shifts_by_one(self, two_producers):
        bi = BiHMM(n_categories=3, seed=0)
        bi.producer_layer.fit(two_producers)
        seq = [(c, iid) for iid, c in two_producers["A"][:5]]
        raw = bi.z_trace(seq)
        lagged = bi.lagged_z_trace(seq)
        assert lagged[0] == bi.producer_layer.unknown_state
        np.testing.assert_array_equal(lagged[1:], raw[:-1])

    def test_empty_history_uses_prior(self, two_producers):
        rng = np.random.default_rng(0)
        seq = self._consumer_sequence(two_producers, rng)
        bi = BiHMM(n_categories=3, seed=0)
        bi.fit(two_producers, [seq])
        dist = bi.predict_next_distribution([])
        assert dist.sum() == pytest.approx(1.0)

    def test_predict_category_probability_bounds(self, two_producers):
        rng = np.random.default_rng(0)
        seq = self._consumer_sequence(two_producers, rng)
        bi = BiHMM(n_categories=3, seed=0)
        bi.fit(two_producers, [seq])
        p = bi.predict_category_probability(seq, 1)
        assert 0.0 < p <= 1.0
        with pytest.raises(ValueError):
            bi.predict_category_probability(seq, 5)

    def test_top_k_ordering(self, two_producers):
        rng = np.random.default_rng(0)
        seq = self._consumer_sequence(two_producers, rng)
        bi = BiHMM(n_categories=3, seed=0)
        bi.fit(two_producers, [seq])
        dist = bi.predict_next_distribution(seq)
        top = bi.predict_top_k(seq, 2)
        assert dist[top[0]] >= dist[top[1]]

    def test_fit_rejects_empty_consumer_sequences(self, two_producers):
        bi = BiHMM(n_categories=3, seed=0)
        with pytest.raises(ValueError, match="non-empty"):
            bi.fit(two_producers, [[]])

    def test_fit_consumers_only_reuses_producer_layer(self, two_producers):
        rng = np.random.default_rng(0)
        seq = self._consumer_sequence(two_producers, rng)
        bi = BiHMM(n_categories=3, seed=0)
        bi.producer_layer.fit(two_producers)
        models_before = dict(bi.producer_layer.models)
        bi.fit_consumers_only([seq], shrinkage=0.5)
        assert bi.producer_layer.models == models_before

    def test_producer_context_improves_prediction_on_coupled_data(self, two_producers):
        """On trajectory-riding data the BiHMM must beat a category-marginal
        predictor — the structural claim behind Fig. 5."""
        rng = np.random.default_rng(1)
        seq = self._consumer_sequence(two_producers, rng, length=140)
        cut = 110
        bi = BiHMM(n_categories=3, n_consumer_states=3, seed=0)
        bi.fit(two_producers, [seq[:cut]], n_iter=25)
        context = list(seq[:cut])
        hits = 0
        marginal = np.bincount([c for c, _ in seq[:cut]], minlength=3)
        marginal_guess = int(np.argmax(marginal))
        marginal_hits = 0
        for cat, item_id in seq[cut:]:
            dist = bi.predict_next_distribution(context)
            hits += int(np.argmax(dist)) == cat
            marginal_hits += marginal_guess == cat
            context.append((cat, item_id))
        assert hits >= marginal_hits
