"""Tests for one-pass user blocking."""

import numpy as np
import pytest

from repro.core.profiles import ProfileEvent, UserProfile
from repro.index.blocks import (
    assign_to_block,
    block_statistics,
    cosine_similarity,
    one_pass_clustering,
)


def profile_with_categories(user_id, categories, producer=0):
    profile = UserProfile(user_id, window_size=1)
    for i, c in enumerate(categories):
        profile.record(
            ProfileEvent(category=c, producer=producer, item_id=user_id * 1000 + i, entities=(c,))
        )
    return profile


class TestCosine:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector_yields_zero(self):
        assert cosine_similarity(np.zeros(2), np.array([1.0, 0.0])) == 0.0


class TestOnePassClustering:
    def test_similar_users_share_block(self):
        profiles = [
            profile_with_categories(1, [0] * 10),
            profile_with_categories(2, [0] * 9 + [1]),
            profile_with_categories(3, [2] * 10),
        ]
        blocks = one_pass_clustering(profiles, 3, similarity_threshold=0.8)
        assert len(blocks) == 2
        by_user = {u: b.block_id for b in blocks for u in b.user_ids}
        assert by_user[1] == by_user[2] != by_user[3]

    def test_max_blocks_cap_enforced(self):
        profiles = [profile_with_categories(i, [i % 5]) for i in range(20)]
        blocks = one_pass_clustering(profiles, 5, similarity_threshold=0.99, max_blocks=3)
        assert len(blocks) == 3
        assert sum(len(b.user_ids) for b in blocks) == 20

    def test_zero_threshold_single_block(self):
        profiles = [profile_with_categories(i, [i % 3]) for i in range(6)]
        blocks = one_pass_clustering(profiles, 3, similarity_threshold=0.0)
        # First user opens a block; everyone else joins it (sim >= 0).
        assert len(blocks) <= 2

    def test_deterministic_for_same_order(self):
        profiles = [profile_with_categories(i, [(i * 7) % 4]) for i in range(15)]
        a = one_pass_clustering(profiles, 4, similarity_threshold=0.5)
        b = one_pass_clustering(profiles, 4, similarity_threshold=0.5)
        assert [blk.user_ids for blk in a] == [blk.user_ids for blk in b]

    def test_block_universes_union_members(self):
        profiles = [
            profile_with_categories(1, [0, 0, 1], producer=3),
            profile_with_categories(2, [0, 1, 1], producer=4),
        ]
        blocks = one_pass_clustering(profiles, 2, similarity_threshold=0.3)
        assert len(blocks) == 1
        block = blocks[0]
        assert block.producer_ids == {3, 4}
        assert block.categories == {0, 1}
        assert block.entity_ids == {0, 1}

    def test_centroid_is_running_mean(self):
        profiles = [
            profile_with_categories(1, [0] * 4),
            profile_with_categories(2, [1] * 4),
        ]
        blocks = one_pass_clustering(profiles, 2, similarity_threshold=0.0)
        assert len(blocks) == 1
        np.testing.assert_allclose(blocks[0].centroid, [0.5, 0.5])

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            one_pass_clustering([], 2, similarity_threshold=2.0)
        with pytest.raises(ValueError):
            one_pass_clustering([], 2, max_blocks=0)


class TestAssignToBlock:
    def test_similar_user_joins_existing(self):
        profiles = [profile_with_categories(1, [0] * 5)]
        blocks = one_pass_clustering(profiles, 2, similarity_threshold=0.5)
        new = profile_with_categories(9, [0] * 5)
        block = assign_to_block(blocks, new, 2, similarity_threshold=0.5)
        assert block is blocks[0]
        assert 9 in block.user_ids

    def test_dissimilar_user_opens_new_block(self):
        profiles = [profile_with_categories(1, [0] * 5)]
        blocks = one_pass_clustering(profiles, 2, similarity_threshold=0.5)
        new = profile_with_categories(9, [1] * 5)
        block = assign_to_block(blocks, new, 2, similarity_threshold=0.9)
        assert block.block_id == 1
        assert len(blocks) == 2

    def test_at_cap_joins_best(self):
        profiles = [profile_with_categories(1, [0] * 5)]
        blocks = one_pass_clustering(profiles, 2, similarity_threshold=0.5)
        new = profile_with_categories(9, [1] * 5)
        block = assign_to_block(blocks, new, 2, similarity_threshold=0.9, max_blocks=1)
        assert block is blocks[0]


class TestBlockStatistics:
    def test_empty_blocks(self):
        assert block_statistics([]) == {"max_entity_num": 0, "max_producer_num": 0}

    def test_reports_worst_case_block(self):
        profiles = [
            profile_with_categories(1, [0, 1, 2], producer=1),
            profile_with_categories(2, [0], producer=2),
        ]
        blocks = one_pass_clustering(profiles, 3, similarity_threshold=0.99)
        stats = block_statistics(blocks)
        assert stats["max_entity_num"] == 3
        assert stats["max_producer_num"] == 1

    def test_blocking_reduces_universe_on_real_data(self, ytube_small):
        """Table II's qualitative claim at test scale: more blocks -> the
        worst block's universe is no larger than the single-block one."""
        from repro.eval.experiments import _profiles_from_dataset

        profiles = _profiles_from_dataset(ytube_small)
        one = block_statistics(one_pass_clustering(profiles, ytube_small.n_categories, 0.0, 1))
        many = block_statistics(
            one_pass_clustering(profiles, ytube_small.n_categories, 0.7, 12)
        )
        assert many["max_entity_num"] <= one["max_entity_num"]
