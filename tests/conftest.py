"""Shared fixtures: tiny deterministic datasets and fitted recommenders.

Session-scoped where construction is expensive; tests must not mutate
session-scoped fixtures (mutating tests build their own instances).
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.mlens import MLensConfig, generate_mlens
from repro.datasets.partitions import partition_interactions
from repro.datasets.ytube import YTubeConfig, generate_ytube
from repro.serve.shmem import SEGMENT_PREFIX, live_segment_names


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Suite-wide guard: every test leaves zero live shared-memory segments.

    The shmem backend's whole contract is explicit segment lifecycle
    (publish → retire/close); a leaked segment means a publisher or
    attachment outlived its owner — the class of bug CPython's
    resource-tracker warnings hint at but don't fail on.  Segment names
    embed the publishing process's pid and publishing only ever happens
    in the parent (workers are readers), so the guard scopes itself to
    *this* process's segments — segments that predate the test or belong
    to concurrent unrelated runs on the same host are tolerated; only
    segments created and left behind by this test fail it.
    """
    mine = f"{SEGMENT_PREFIX}{os.getpid():x}-"
    before = set(live_segment_names())
    yield
    leaked = [
        name
        for name in live_segment_names()
        if name.startswith(mine) and name not in before
    ]
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


@pytest.fixture(scope="session")
def ytube_small():
    """Tiny YTube-like dataset (read-only)."""
    return generate_ytube(YTubeConfig.small())


@pytest.fixture(scope="session")
def mlens_small():
    """Tiny MLens-like dataset (read-only)."""
    return generate_mlens(MLensConfig.small())


@pytest.fixture(scope="session")
def ytube_stream(ytube_small):
    """Partitioned tiny YTube stream (read-only)."""
    return partition_interactions(ytube_small)


@pytest.fixture(scope="session")
def fitted_ssrec(ytube_small, ytube_stream):
    """ssRec fitted on the tiny YTube training slice, scan mode (read-only:
    recommend-only usage; tests that update must build their own)."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec


@pytest.fixture(scope="session")
def fitted_ssrec_indexed(ytube_small, ytube_stream):
    """ssRec fitted with the CPPse-index on the tiny YTube training slice."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=True, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec


@pytest.fixture()
def fresh_ssrec(ytube_small, ytube_stream):
    """A mutable per-test ssRec (scan mode)."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec


@pytest.fixture()
def fresh_ssrec_indexed(ytube_small, ytube_stream):
    """A mutable per-test ssRec with the CPPse-index."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=True, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec
