"""Shared fixtures: tiny deterministic datasets and fitted recommenders.

Session-scoped where construction is expensive; tests must not mutate
session-scoped fixtures (mutating tests build their own instances).
"""

from __future__ import annotations

import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.mlens import MLensConfig, generate_mlens
from repro.datasets.partitions import partition_interactions
from repro.datasets.ytube import YTubeConfig, generate_ytube


@pytest.fixture(scope="session")
def ytube_small():
    """Tiny YTube-like dataset (read-only)."""
    return generate_ytube(YTubeConfig.small())


@pytest.fixture(scope="session")
def mlens_small():
    """Tiny MLens-like dataset (read-only)."""
    return generate_mlens(MLensConfig.small())


@pytest.fixture(scope="session")
def ytube_stream(ytube_small):
    """Partitioned tiny YTube stream (read-only)."""
    return partition_interactions(ytube_small)


@pytest.fixture(scope="session")
def fitted_ssrec(ytube_small, ytube_stream):
    """ssRec fitted on the tiny YTube training slice, scan mode (read-only:
    recommend-only usage; tests that update must build their own)."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec


@pytest.fixture(scope="session")
def fitted_ssrec_indexed(ytube_small, ytube_stream):
    """ssRec fitted with the CPPse-index on the tiny YTube training slice."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=True, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec


@pytest.fixture()
def fresh_ssrec(ytube_small, ytube_stream):
    """A mutable per-test ssRec (scan mode)."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=False, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec


@pytest.fixture()
def fresh_ssrec_indexed(ytube_small, ytube_stream):
    """A mutable per-test ssRec with the CPPse-index."""
    rec = SsRecRecommender(config=SsRecConfig(), use_index=True, seed=1)
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec
