"""Parity of the sharded serving facade with the single recommender.

The headline guarantee: ``ShardedRecommender`` results are identical
(``==`` on the ``(user_id, score)`` lists, not approximate) to the
single ``SsRecRecommender`` — scan mode under any strategy, index mode
under the block-aware plan — through static serving, micro-batches,
mid-stream updates, shard-local maintenance and new users.
"""

import dataclasses

import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.serve import ShardedRecommender


def _fresh(ytube_small, ytube_stream, use_index, **config_kwargs):
    rec = SsRecRecommender(
        config=SsRecConfig(**config_kwargs), use_index=use_index, seed=1
    )
    rec.fit(ytube_small, ytube_stream.training_interactions())
    return rec


def _pairs(ytube_small, ytube_stream, use_index, n_shards, strategy, **kwargs):
    """(single, sharded) twins with identical training."""
    single = _fresh(ytube_small, ytube_stream, use_index, **kwargs)
    twin = _fresh(ytube_small, ytube_stream, use_index, **kwargs)
    service = ShardedRecommender.from_trained(
        twin, n_shards=n_shards, strategy=strategy
    )
    return single, service


class TestStaticParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("strategy", ["hash", "block"])
    def test_scan_mode_any_strategy(
        self, ytube_small, ytube_stream, n_shards, strategy
    ):
        single, service = _pairs(
            ytube_small, ytube_stream, False, n_shards, strategy
        )
        items = ytube_stream.items_in_partition(2)[:12]
        assert all(
            service.recommend(it, 7) == single.recommend(it, 7) for it in items
        )
        assert service.recommend_batch(items, 7) == [
            single.recommend(it, 7) for it in items
        ]

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_index_mode_block_strategy(self, ytube_small, ytube_stream, n_shards):
        single, service = _pairs(ytube_small, ytube_stream, True, n_shards, "block")
        items = ytube_stream.items_in_partition(2)[:12]
        assert all(
            service.recommend(it, 7) == single.recommend(it, 7) for it in items
        )
        assert service.recommend_batch(items, 7) == [
            single.recommend(it, 7) for it in items
        ]

    def test_k_exceeding_population(self, ytube_small, ytube_stream):
        single, service = _pairs(ytube_small, ytube_stream, False, 3, "hash")
        item = ytube_stream.items_in_partition(2)[0]
        assert service.recommend(item, 10_000) == single.recommend(item, 10_000)

    def test_default_k_from_config(self, ytube_small, ytube_stream):
        _, service = _pairs(ytube_small, ytube_stream, False, 2, "hash")
        item = ytube_stream.items_in_partition(2)[0]
        assert len(service.recommend(item)) == service.config.default_k

    def test_empty_batch(self, ytube_small, ytube_stream):
        _, service = _pairs(ytube_small, ytube_stream, False, 2, "hash")
        assert service.recommend_batch([], 5) == []

    def test_threaded_fan_out_matches_sequential(self, ytube_small, ytube_stream):
        single = _fresh(ytube_small, ytube_stream, True)
        twin = _fresh(ytube_small, ytube_stream, True)
        with ShardedRecommender.from_trained(
            twin, n_shards=3, strategy="block", workers=4
        ) as service:
            items = ytube_stream.items_in_partition(2)[:10]
            assert all(
                service.recommend(it, 7) == single.recommend(it, 7) for it in items
            )
            assert service.recommend_batch(items, 7) == [
                single.recommend(it, 7) for it in items
            ]
            assert service._executor is not None
        # Context exit released the pool; the service stays usable and
        # rebuilds it lazily.
        assert service._executor is None
        item = ytube_stream.items_in_partition(2)[0]
        assert service.recommend(item, 7) == single.recommend(item, 7)
        service.close()


class TestStreamingParity:
    @pytest.mark.parametrize(
        "use_index,strategy", [(False, "hash"), (False, "block"), (True, "block")]
    )
    def test_mid_stream_updates_and_maintenance(
        self, ytube_small, ytube_stream, use_index, strategy
    ):
        # Tight maintenance cadence so Algorithm 2 actually fires mid-run.
        single, service = _pairs(
            ytube_small,
            ytube_stream,
            use_index,
            3,
            strategy,
            maintenance_interval=5,
        )
        items = ytube_stream.items_in_partition(2)[:20]
        updates = ytube_stream.partitions[2][:40]
        for i, item in enumerate(items):
            for inter in updates[2 * i : 2 * i + 2]:
                payload = ytube_small.item(inter.item_id)
                single.update(inter, payload)
                service.update(inter, payload)
            single.observe_item(item)
            service.observe_item(item)
            assert service.recommend(item, 5) == single.recommend(item, 5)
            window = items[max(0, i - 3) : i + 1]
            assert service.recommend_batch(window, 5) == [
                single.recommend(it, 5) for it in window
            ]

    def test_new_user_routed_and_scored(self, ytube_small, ytube_stream):
        single, service = _pairs(ytube_small, ytube_stream, False, 3, "hash")
        inter = dataclasses.replace(ytube_stream.partitions[2][0], user_id=987654)
        payload = ytube_small.item(inter.item_id)
        single.update(inter, payload)
        service.update(inter, payload)
        # The new user exists exactly once, in its hash-routed shard, and
        # the global view aliases the same profile object.
        owning = service.shards[service.plan.shard_of(987654)]
        assert owning.profiles.get(987654) is service.profiles.get(987654)
        assert [
            s for s in service.shards if s.profiles.get(987654) is not None
        ] == [owning]
        for item in ytube_stream.items_in_partition(2)[:5]:
            assert service.recommend(item, 5) == single.recommend(item, 5)

    def test_new_user_in_index_mode_stays_served(self, ytube_small, ytube_stream):
        # Documented boundary: in index mode a brand-new mid-stream user's
        # shard-local block placement may differ from a single global
        # index's choice, so exact parity is not promised for that user —
        # but the service must keep serving exactly, absorb the user into
        # exactly one shard's index, and find them for matching queries.
        _, service = _pairs(
            ytube_small, ytube_stream, True, 3, "block", maintenance_interval=1
        )
        inter = dataclasses.replace(ytube_stream.partitions[2][0], user_id=987654)
        payload = ytube_small.item(inter.item_id)
        # Enough events to flush the short-term window, so the item's
        # entities reach the long-term list and the block universe.
        for _ in range(service.config.window_size):
            service.update(inter, payload)
        owning = service.shards[service.plan.shard_of(987654)]
        assert owning.index is not None
        assert 987654 in owning.index.block_of_user
        assert [
            s for s in service.shards if 987654 in s.index.block_of_user
        ] == [owning]
        ranked = service.recommend(payload, len(service.profiles))
        assert 987654 in [user for user, _ in ranked]

    def test_shards_inherit_runtime_maintenance_interval(
        self, ytube_small, ytube_stream
    ):
        # The facade's maintenance_interval attribute is a documented
        # runtime knob; shards must honor the tuned value, not the config
        # default, so cadence matches the unsharded deployment.
        trained = _fresh(ytube_small, ytube_stream, False)
        trained.maintenance_interval = 7
        service = ShardedRecommender.from_trained(
            trained, n_shards=2, strategy="block", use_index=True
        )
        assert [s.maintenance_interval for s in service.shards] == [7, 7]

    def test_run_maintenance_counts_refreshes(self, ytube_small, ytube_stream):
        _, service = _pairs(
            ytube_small, ytube_stream, True, 2, "block", maintenance_interval=10_000
        )
        for inter in ytube_stream.partitions[2][:10]:
            service.update(inter, ytube_small.item(inter.item_id))
        refreshed = service.run_maintenance()
        assert refreshed > 0
        assert all(not s._maintenance_pending for s in service.shards)


class TestServiceSurface:
    def test_metrics_rows(self, ytube_small, ytube_stream):
        _, service = _pairs(ytube_small, ytube_stream, False, 2, "hash")
        items = ytube_stream.items_in_partition(2)[:6]
        for item in items:
            service.recommend(item, 5)
        service.recommend_batch(items, 5)
        rows = service.metrics()
        assert [row["shard_id"] for row in rows] == [0, 1]
        for row in rows:
            assert row["queries"] == len(items)
            assert row["batches"] == 1
            assert row["items_served"] == 2 * len(items)
            assert row["p95_latency_ms"] >= row["p50_latency_ms"] >= 0.0

    def test_observe_alias(self, ytube_small, ytube_stream):
        _, service = _pairs(ytube_small, ytube_stream, False, 2, "hash")
        item = ytube_stream.items_in_partition(2)[0]
        service.observe(item)  # same entry point as observe_item

    def test_fit_classmethod(self, ytube_small, ytube_stream):
        service = ShardedRecommender.fit(
            ytube_small,
            ytube_stream.training_interactions(),
            config=SsRecConfig(n_shards=2),
            use_index=True,
            seed=1,
        )
        assert service.n_shards == 2
        assert service.use_index
        item = ytube_stream.items_in_partition(2)[0]
        assert len(service.recommend(item, 5)) == 5

    def test_requires_fitted(self, ytube_small):
        with pytest.raises(ValueError, match="fitted"):
            ShardedRecommender.from_trained(SsRecRecommender())

    def test_balance_stats_total(self, ytube_small, ytube_stream):
        _, service = _pairs(ytube_small, ytube_stream, False, 3, "block")
        stats = service.balance_stats()
        assert stats["n_users"] == len(ytube_small.consumer_ids)
