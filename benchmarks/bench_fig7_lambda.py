"""Fig. 7: effect of the short-term weight lambda_s, all 4 datasets.

P@k over lambda_s in 0..1 (step 0.1) with |W| = 5.  Expected shape:
unimodal — "the recommendation effectiveness is increased with the increase
of lambda_s, reaches an optimal point, and then decreases"; pure short-term
(lambda_s = 1) collapses; the optimum is interior (paper: 0.4 on YTube-like,
0.3 on MLens-like; synthetic sets inherit their source's optimum).
"""

import pytest

from conftest import MIN_TRUTH
from repro.eval import experiments as ex

LAMBDAS = tuple(round(0.1 * i, 1) for i in range(11))


@pytest.mark.parametrize("name", ["YTube", "SynYTube", "MLens", "SynMLens"])
def test_fig7_lambda_weight(bench_run, datasets, save_result, name):
    result, seconds = bench_run(
        lambda: ex.run_fig7(
            datasets[name], lambdas=LAMBDAS, ks=(5, 10, 20, 30), min_truth=MIN_TRUTH
        )
    )
    p5 = {lam: result.precision[lam][5] for lam in LAMBDAS}
    optimum = result.optimal_lambda(5)
    save_result(
        f"fig7_{name.lower()}",
        result.to_text(),
        metrics={"driver": {"seconds": seconds}},
        checks={"optimal_lambda_at_5": optimum},
        extras={"p_at_5_by_lambda": {str(lam): v for lam, v in p5.items()}},
    )
    # Interior optimum: some mixture beats both extremes; lambda=1 is worst
    # or near-worst (the paper's "interest drift" failure mode).
    assert p5[optimum] >= p5[0.0]
    assert p5[optimum] > p5[1.0]
