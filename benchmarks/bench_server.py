"""Network serving: dynamic micro-batch coalescing vs per-request dispatch.

Fires an open-loop query load (:func:`repro.serve.loadgen.drive_queries`)
through a live socket server twice — once with the coalescer off (every
recommend dispatched to the model thread individually) and once with it
on (concurrently queued recommends regrouped into greedy micro-batches
that track the arrival rate).  Both arms serve the same fitted scan-mode
recommender and every served ranked list is compared bitwise against the
in-process ``recommend_batch`` reference, so the measured win is proven
exact as it is timed (the wire conformance suite additionally holds the
``served-*`` plans to zero divergences across the whole scenario
catalog).

Assertions:

- **parity** — both arms are bit-identical to the in-process reference;
- **coalescing actually happened** — the coalesced arm formed real
  multi-request batches;
- **speedup** — coalescing clears >=1.5x items/sec over per-request
  dispatch at default scale.
"""

import os

from conftest import SCALE
from repro.eval import experiments as ex

#: CI smoke runs set this to shrink the query load.
MAX_ITEMS = int(os.environ.get("REPRO_BENCH_SERVER_ITEMS", "256"))

#: In-flight request bound of the open-loop generator.  The coalescer
#: tracks the arrival rate (windows close when the model frees up), so
#: under this load its batches settle near the concurrency.
CONCURRENCY = int(os.environ.get("REPRO_BENCH_SERVER_CONCURRENCY", "16"))

#: The >=1.5x headline claim of the coalescer (open-loop load at default
#: scale; scales below keep the same bar).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVER_MIN_SPEEDUP", "1.5"))


def test_server_coalescing(bench_run, bench_seed, save_result, efficiency_datasets):
    result, seconds = bench_run(
        lambda: ex.run_server_throughput(
            efficiency_datasets["YTube"],
            max_items=MAX_ITEMS,
            concurrency=CONCURRENCY,
            seed=bench_seed,
        )
    )
    metrics = {
        "driver": {"seconds": seconds},
        "per_request": {
            "items_per_sec": result.per_request_items_per_sec,
            "seconds": result.per_request_seconds,
            "latency_ms": result.per_request_latency_ms,
        },
        "coalesced": {
            "items_per_sec": result.coalesced_items_per_sec,
            "seconds": result.coalesced_seconds,
            "latency_ms": result.coalesced_latency_ms,
        },
    }
    checks = {
        "parity_ok": result.parity_ok,
        "coalescing_speedup": result.speedup,
        "mean_batch_size": result.mean_batch_size,
        "max_batch_size": result.max_batch_size,
        "n_items": result.n_items,
    }
    # The coalesced server's metrics scrape rides along in extras (nested
    # registry dump); prove it round-trips the obs schema before writing
    # so the artifact never carries an unparseable dump.
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry.from_dict(result.obs.get("registry", {}))
    assert registry.to_dict() == result.obs.get("registry"), "obs dump round-trip"
    extras = {
        "scale": SCALE,
        "concurrency": result.concurrency,
        "k": result.k,
        "obs": result.obs,
    }
    save_result("server", result.to_text(), metrics=metrics, checks=checks,
                extras=extras)
    # The wire is exact or it is nothing: both arms matched the in-process
    # reference bit for bit while being timed.
    assert result.parity_ok, result.to_text()
    # The coalescer must have formed real batches to measure.
    assert result.mean_batch_size >= 2.0, result.to_text()
    # The headline: >=1.5x items/sec over per-request dispatch.
    assert result.speedup >= MIN_SPEEDUP, result.to_text()
