"""Benchmark fixtures: shared datasets and result persistence.

Scale is controlled by ``REPRO_BENCH_SCALE`` (``small`` | ``default`` |
``paper_shape``) and every seeded stage — dataset generation, synthpop
resampling, model init — derives from ``REPRO_BENCH_SEED``, so a bench
run is reproducible from those two knobs alone.  Each benchmark runs its
experiment driver once (``benchmark.pedantic``) and writes the
regenerated table/figure text to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets.ytube import YTubeConfig, generate_ytube
from repro.eval import experiments as ex

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
RESULTS_DIR = Path(__file__).parent / "results"

#: Ground-truth density threshold for effectiveness benches; shapes are
#: insensitive to it, but levels need a few interactors per judged item.
MIN_TRUTH = 3


@pytest.fixture(scope="session")
def bench_seed():
    """The one seed every bench stage derives from (``REPRO_BENCH_SEED``)."""
    return SEED


@pytest.fixture(scope="session")
def datasets():
    """The paper's four datasets (Table III) at the configured scale."""
    return ex.make_datasets(SCALE, seed=SEED)


@pytest.fixture(scope="session")
def sparse_ytube():
    """Paper-sparsity YTube variant (Table II's regime)."""
    return generate_ytube(YTubeConfig.sparse(seed=SEED))


@pytest.fixture(scope="session")
def efficiency_datasets():
    """Datasets for the efficiency figures (10/11).

    The index-vs-scan crossover needs a real user population: a sequential
    scan over ~80 users beats any index.  These benches therefore run at
    least at ``default`` scale (600 consumers) even when the effectiveness
    benches run ``small``.
    """
    scale = "default" if SCALE == "small" else SCALE
    return ex.make_datasets(scale, seed=SEED)


@pytest.fixture(scope="session")
def save_result():
    """Persist one regenerated artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
