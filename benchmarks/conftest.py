"""Benchmark fixtures: shared datasets and result persistence.

Scale is controlled by ``REPRO_BENCH_SCALE`` (``small`` | ``default`` |
``paper_shape``) and every seeded stage — dataset generation, synthpop
resampling, model init — derives from ``REPRO_BENCH_SEED``, so a bench
run is reproducible from those two knobs alone.  Each benchmark runs its
experiment driver once (``benchmark.pedantic``, via :func:`bench_run`,
which also captures the driver's wall clock) and persists **two**
artifacts per result through :func:`save_result`:

- ``benchmarks/results/<name>.txt`` — the regenerated table/figure text
  EXPERIMENTS.md quotes;
- ``benchmarks/results/BENCH_<name>.json`` — the schema-validated
  machine-readable record (:mod:`repro.bench`) that the CI perf gate
  compares against ``benchmarks/baselines/`` via
  ``python -m repro.bench compare``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.bench import BenchResult
from repro.datasets.ytube import YTubeConfig, generate_ytube
from repro.eval import experiments as ex

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
RESULTS_DIR = Path(__file__).parent / "results"

#: Ground-truth density threshold for effectiveness benches; shapes are
#: insensitive to it, but levels need a few interactors per judged item.
MIN_TRUTH = 3


@pytest.fixture(scope="session")
def bench_seed():
    """The one seed every bench stage derives from (``REPRO_BENCH_SEED``)."""
    return SEED


@pytest.fixture(scope="session")
def datasets():
    """The paper's four datasets (Table III) at the configured scale."""
    return ex.make_datasets(SCALE, seed=SEED)


@pytest.fixture(scope="session")
def sparse_ytube():
    """Paper-sparsity YTube variant (Table II's regime)."""
    return generate_ytube(YTubeConfig.sparse(seed=SEED))


@pytest.fixture(scope="session")
def efficiency_datasets():
    """Datasets for the efficiency figures (10/11).

    The index-vs-scan crossover needs a real user population: a sequential
    scan over ~80 users beats any index.  These benches therefore run at
    least at ``default`` scale (600 consumers) even when the effectiveness
    benches run ``small``.
    """
    scale = "default" if SCALE == "small" else SCALE
    return ex.make_datasets(scale, seed=SEED)


@pytest.fixture
def bench_run(benchmark):
    """Run a driver once under pytest-benchmark, returning
    ``(result, wall_seconds)`` so every artifact carries its runtime."""

    def _run(fn):
        timing: dict[str, float] = {}

        def wrapped():
            started = time.perf_counter()
            out = fn()
            timing["seconds"] = time.perf_counter() - started
            return out

        result = benchmark.pedantic(wrapped, rounds=1, iterations=1)
        return result, timing["seconds"]

    return _run


@pytest.fixture(scope="session")
def save_result():
    """Persist one regenerated result (text + BENCH_<name>.json artifact).

    ``metrics`` is the comparable payload of the JSON artifact (per-path
    ``items_per_sec``/``seconds``/``latency_ms``; see
    :mod:`repro.bench.schema`); ``checks`` records the assertions the
    bench made; ``extras`` carries the free-form series for trajectory
    plots.  The artifact is schema-validated on write, so a malformed
    producer fails its own bench run.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(
        name: str,
        text: str,
        *,
        metrics: dict,
        checks: dict | None = None,
        extras: dict | None = None,
    ) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        artifact = BenchResult(
            name=name,
            seed=SEED,
            scale=SCALE,
            metrics=metrics,
            checks=checks or {},
            extras=extras or {},
        )
        json_path = artifact.write(RESULTS_DIR)
        print(f"\n{text}\n[saved to {path} and {json_path.name}]")

    return _save
