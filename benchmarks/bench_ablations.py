"""Ablations on ssRec design choices (beyond the paper's own figures).

DESIGN.md calls out three load-bearing design decisions; each gets an
ablation here:

- **Dirichlet smoothing mass** (Sec. IV-C): too little re-introduces the
  zero-probability problem, too much washes out the MLE signal.
- **Signature-tree fanout** (Sec. V-A): controls tree depth vs per-node
  bound tightness in the branch-and-bound KNN.
- **Entity expansion** (Sec. IV-B): the diversity mechanism's cost —
  expansion widens queries, so each KNN touches more trees/slots.
"""

import time


from conftest import MIN_TRUTH
from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.partitions import partition_interactions
from repro.eval.harness import StreamEvaluator


def _precision_at_5(dataset, config):
    stream = partition_interactions(dataset)
    rec = SsRecRecommender(config=config, seed=1)
    rec.fit(dataset, stream.training_interactions())
    evaluator = StreamEvaluator(stream, ks=(5,), min_truth=MIN_TRUTH)
    return evaluator.run(rec).p_at_k[5]


def test_ablation_dirichlet_mass(bench_run, datasets, save_result):
    """P@5 across smoothing masses — the default should be competitive."""
    dataset = datasets["YTube"]

    def run():
        return {
            mu: _precision_at_5(dataset, SsRecConfig(dirichlet_mu=mu))
            for mu in (0.1, 1.0, 10.0, 100.0)
        }

    result, seconds = bench_run(run)
    lines = ["Ablation — Dirichlet smoothing mass (YTube, P@5)"]
    for mu, p in result.items():
        lines.append(f"  mu={mu:<6} P@5={p:.4f}")
    save_result(
        "ablation_dirichlet",
        "\n".join(lines),
        metrics={"driver": {"seconds": seconds}},
        extras={"p_at_5_by_mu": {str(mu): p for mu, p in result.items()}},
    )
    default = result[10.0]
    assert default >= max(result.values()) * 0.8


def test_ablation_tree_fanout(bench_run, efficiency_datasets, save_result):
    """Index query time across fanouts — all must stay correct and usable."""
    dataset = efficiency_datasets["YTube"]

    def run():
        timings = {}
        stream = partition_interactions(dataset)
        items = stream.items_in_partition(2)[:40]
        for fanout in (4, 8, 16, 32):
            rec = SsRecRecommender(
                config=SsRecConfig(tree_fanout=fanout), use_index=True, seed=1
            )
            rec.fit(dataset, stream.training_interactions())
            started = time.perf_counter()
            for item in items:
                rec.index.knn(item, 30)
            timings[fanout] = (time.perf_counter() - started) / len(items) * 1000
        return timings

    result, seconds = bench_run(run)
    lines = ["Ablation — signature-tree fanout (YTube, ms/item, k=30)"]
    for fanout, ms in result.items():
        lines.append(f"  fanout={fanout:<3} {ms:.3f} ms")
    metrics = {"driver": {"seconds": seconds}}
    for fanout, ms in result.items():
        if ms > 0:
            metrics[f"knn[fanout={fanout}]"] = {"items_per_sec": 1000.0 / ms}
    save_result("ablation_fanout", "\n".join(lines), metrics=metrics)
    assert all(ms > 0 for ms in result.values())


def test_ablation_expansion_cost(bench_run, datasets, save_result):
    """Entity expansion buys diversity at bounded query-cost overhead."""
    dataset = datasets["YTube"]

    def run():
        out = {}
        for label, use_expansion in (("with-expansion", True), ("no-expansion", False)):
            stream = partition_interactions(dataset)
            rec = SsRecRecommender(
                config=SsRecConfig(use_expansion=use_expansion), use_index=True, seed=1
            )
            rec.fit(dataset, stream.training_interactions())
            items = stream.items_in_partition(2)[:40]
            started = time.perf_counter()
            for item in items:
                rec.index.knn(item, 30)
            out[label] = (time.perf_counter() - started) / len(items) * 1000
        return out

    result, seconds = bench_run(run)
    lines = ["Ablation — expansion query-cost overhead (YTube, ms/item)"]
    for label, ms in result.items():
        lines.append(f"  {label:<16} {ms:.3f} ms")
    metrics = {"driver": {"seconds": seconds}}
    for label, ms in result.items():
        if ms > 0:
            metrics[f"knn[{label}]"] = {"items_per_sec": 1000.0 / ms}
    save_result("ablation_expansion_cost", "\n".join(lines), metrics=metrics)
    # Expansion may not exceed a generous constant-factor overhead.
    assert result["with-expansion"] <= result["no-expansion"] * 5
