"""Fig. 10: recommendation efficiency — CTT, UCD, CPPse-index.

Mean per-item response time (ms) accumulated over 1..4 test partitions at
k = 30.  Expected shape: the CPPse-index is fastest and flattest; CTT and
UCD scan every user per item and pay growing model costs as data
accumulates; UCD is slower than CTT ("due to the extra time cost from the
diversity-based matching").
"""

import pytest

from repro.eval import experiments as ex


@pytest.mark.parametrize("name", ["YTube", "SynYTube", "MLens", "SynMLens"])
def test_fig10_response_time(bench_run, efficiency_datasets, save_result, name):
    result, seconds = bench_run(
        lambda: ex.run_fig10(
            efficiency_datasets[name], k=30, max_items_per_partition=25, min_truth=2
        )
    )
    final = {method: series[4] for method, series in result.time_ms.items()}
    # Per-method throughput (items/sec from the accumulated mean per-item
    # ms) is the comparable metric; the full cumulative series rides in
    # extras for trajectory plots.
    metrics = {"driver": {"seconds": seconds}}
    for method, final_ms in final.items():
        if final_ms > 0:
            metrics[method] = {"items_per_sec": 1000.0 / final_ms}
    save_result(
        f"fig10_{name.lower()}",
        result.to_text(),
        metrics=metrics,
        extras={
            "time_ms": {
                method: {str(n): v for n, v in series.items()}
                for method, series in result.time_ms.items()
            }
        },
    )
    # Index beats both sequential scanners on accumulated mean time.
    assert final["CPPse-index"] < final["UCD"]
    assert final["CPPse-index"] < final["CTT"]
    assert final["UCD"] > final["CTT"]
