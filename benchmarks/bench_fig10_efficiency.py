"""Fig. 10: recommendation efficiency — CTT, UCD, CPPse-index.

Mean per-item response time (ms) accumulated over 1..4 test partitions at
k = 30.  Expected shape: the CPPse-index is fastest and flattest; CTT and
UCD scan every user per item and pay growing model costs as data
accumulates; UCD is slower than CTT ("due to the extra time cost from the
diversity-based matching").
"""

import pytest

from repro.eval import experiments as ex


@pytest.mark.parametrize("name", ["YTube", "SynYTube", "MLens", "SynMLens"])
def test_fig10_response_time(benchmark, efficiency_datasets, save_result, name):
    result = benchmark.pedantic(
        lambda: ex.run_fig10(
            efficiency_datasets[name], k=30, max_items_per_partition=25, min_truth=2
        ),
        rounds=1,
        iterations=1,
    )
    save_result(f"fig10_{name.lower()}", result.to_text())
    final = {method: series[4] for method, series in result.time_ms.items()}
    # Index beats both sequential scanners on accumulated mean time.
    assert final["CPPse-index"] < final["UCD"]
    assert final["CPPse-index"] < final["CTT"]
    assert final["UCD"] > final["CTT"]
