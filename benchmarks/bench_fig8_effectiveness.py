"""Fig. 8: effectiveness comparison — CTT, UCD, ssRec-ne, ssRec.

P@k at k in {5, 10, 20, 30} with the tuned parameters.  Expected shape:
ssRec best overall, ssRec-ne (no entity expansion) close behind, CTT and UCD
trailing — "our ssRec approach performs best at all k settings among all
considered methods".
"""

import pytest

from conftest import MIN_TRUTH
from repro.eval import experiments as ex

KS = (5, 10, 20, 30)


@pytest.mark.parametrize("name", ["YTube", "SynYTube", "MLens", "SynMLens"])
def test_fig8_effectiveness_comparison(bench_run, datasets, save_result, name):
    result, seconds = bench_run(
        lambda: ex.run_fig8(datasets[name], ks=KS, min_truth=MIN_TRUTH)
    )
    p = result.precision
    save_result(
        f"fig8_{name.lower()}",
        result.to_text(),
        metrics={"driver": {"seconds": seconds}},
        extras={
            "p_at_k": {
                method: {str(k): v for k, v in series.items()}
                for method, series in p.items()
            }
        },
    )
    if name in ("YTube", "MLens"):
        # Headline shape on the source datasets: ssRec beats both baselines
        # at the sharpest cutoff and wins the majority of cutoffs.
        assert p["ssRec"][5] > p["CTT"][5]
        assert p["ssRec"][5] > p["UCD"][5]
        wins = sum(1 for k in KS if p["ssRec"][k] >= max(p["CTT"][k], p["UCD"][k]))
        assert wins >= 3
    else:
        # Synthpop clones blur the fine-grained entity/temporal signal
        # (EXPERIMENTS.md); require ssRec to stay competitive with the best
        # baseline on the mean over cutoffs.
        def mean_p(method):
            return sum(p[method][k] for k in KS) / len(KS)

        best_baseline = max(mean_p("CTT"), mean_p("UCD"))
        assert mean_p("ssRec") >= 0.9 * best_baseline
