"""Near-duplicate collapse (``*-dedup`` plans) vs its dedup-off anchor.

One bench, two traffic shapes, two strictness modes:

- **exact** on ``duplicate_out_of_order`` — geometric at-least-once
  upload redelivery.  Every deduplicated ranked list is compared to the
  anchor's bitwise *while being timed*, so the measured win is proven
  exact (the conformance suite additionally holds the ``*-dedup`` plans
  to zero divergences across the whole scenario catalog).
- **approx** on ``mutated_retry`` — retry chains whose entity sets are
  jittered between attempts, so exact keys miss but Jaccard-verified
  LSH groups collapse them.  Output is judged by recall@k against the
  anchor: the fraction of the anchor's top-k audience each approx list
  retains, averaged over every served upload, swept across thresholds.

Assertions:

- **exact parity** — exact-mode serving is bit-identical to the anchor
  on every served item, in both runs;
- **collapse** — both scenarios actually produce collapses to measure;
- **exact speedup** — exact-mode serving clears >=1.3x items/sec over
  the anchor on redelivery traffic;
- **approx recall** — recall@k >= 0.95 at the config-default threshold
  on mutated-retry traffic.
"""

import os

from conftest import SCALE
from repro.eval import experiments as ex

#: CI smoke runs set this to shrink the replayed stream.
MAX_EVENTS = int(os.environ.get("REPRO_BENCH_DEDUP_EVENTS", "4800"))

#: The >=1.3x headline claim of exact-mode collapse (redelivery-heavy
#: delivery at default scale; scales below keep the same bar).
MIN_SPEEDUP = 1.3

#: The recall floor of approx-mode collapse at the default threshold.
MIN_RECALL = 0.95


def test_dedup(bench_run, bench_seed, save_result, efficiency_datasets):
    (exact_run, approx_run), seconds = bench_run(
        lambda: (
            ex.run_dedup(
                base=efficiency_datasets["YTube"],
                scenario="duplicate_out_of_order",
                seed=bench_seed,
                max_events=MAX_EVENTS,
                taus=(0.6,),
            ),
            ex.run_dedup(
                base=efficiency_datasets["YTube"],
                scenario="mutated_retry",
                seed=bench_seed,
                max_events=MAX_EVENTS,
            ),
        )
    )
    metrics = {
        "driver": {"seconds": seconds},
        "anchor": {
            "items_per_sec": exact_run.anchor_items_per_sec,
            "seconds": exact_run.anchor_seconds,
        },
        "exact": {
            "items_per_sec": exact_run.exact_items_per_sec,
            "seconds": exact_run.exact_seconds,
        },
    }
    checks = {
        "exact_parity_ok": exact_run.exact_parity_ok
        and approx_run.exact_parity_ok,
        "exact_speedup": exact_run.exact_speedup,
        "exact_collapse_rate": exact_run.exact_collapse_rate,
        "approx_default_recall": approx_run.default_recall,
        "approx_default_tau": approx_run.default_tau,
        "n_served": exact_run.n_served,
    }
    extras = {
        "exact_stats": exact_run.exact_stats,
        "approx_sweep": [
            {"tau": row["tau"], "recall": row["recall"], "stats": row["stats"]}
            for row in approx_run.approx
        ],
        "scale": SCALE,
    }
    text = exact_run.to_text() + "\n" + approx_run.to_text()
    save_result("dedup", text, metrics=metrics, checks=checks, extras=extras)
    # Exact mode is bit-identical or it is nothing — in both runs.
    assert exact_run.exact_parity_ok, exact_run.to_text()
    assert approx_run.exact_parity_ok, approx_run.to_text()
    # Both scenarios must actually produce collapses to measure.
    assert exact_run.exact_stats.get("collapsed", 0) > 0, exact_run.to_text()
    default_row = approx_run.approx_at(approx_run.default_tau)
    assert default_row is not None, approx_run.to_text()
    assert default_row["stats"].get("collapsed", 0) > 0, approx_run.to_text()
    # The headline: >=1.3x items/sec over the dedup-off anchor.
    assert exact_run.exact_speedup >= MIN_SPEEDUP, exact_run.to_text()
    # The quality floor: recall@k >= 0.95 at the default threshold.
    assert approx_run.default_recall >= MIN_RECALL, approx_run.to_text()
