"""Fig. 6: effect of the short-term window size |W|, all 4 datasets.

For each |W| in 1..10 the best P@k over the lambda grid is reported (the
paper's tuning protocol).  Expected shape: an interior optimum — "when a
small |W| is adopted, the user short-term interests are not accurately
predicted due to the interest drift ... if a large |W| is employed, the
short-term interest may fall back to the long-term interest".
"""

import pytest

from conftest import MIN_TRUTH
from repro.eval import experiments as ex


@pytest.mark.parametrize("name", ["YTube", "SynYTube", "MLens", "SynMLens"])
def test_fig6_window_size(bench_run, datasets, save_result, name):
    windows = tuple(range(1, 11))
    result, seconds = bench_run(
        lambda: ex.run_fig6(
            datasets[name],
            window_sizes=windows,
            ks=(5, 10, 20, 30),
            min_truth=MIN_TRUTH,
        )
    )
    p5 = {w: result.precision[w][5] for w in windows}
    save_result(
        f"fig6_{name.lower()}",
        result.to_text(),
        metrics={"driver": {"seconds": seconds}},
        extras={"p_at_5_by_window": {str(w): v for w, v in p5.items()}},
    )
    # Every window's tuned precision is meaningfully better than nothing and
    # the curve is not degenerate (some variation with |W|).
    assert max(p5.values()) > 0
    assert max(p5.values()) > min(p5.values())
