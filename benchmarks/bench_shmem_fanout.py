"""Shared-memory fan-out scaling: one batched request per shard per window.

Sweeps ``ShardedRecommender`` with the ``shmem`` backend against the
sequential fan-out over shard counts, in scan and index mode, and checks
what the segment-based runtime promises:

- **Parity**: every swept (shard count, backend) path returns results
  bit-identical to the single recommender — the publish/attach segment
  codec, the epoch protocol and the one-request-per-shard serve window
  change nothing about the answer.
- **Fan-out scaling** (multi-core hosts): because workers read the
  published segments zero-copy and a serve window costs exactly one
  request/reply per shard, the shmem index-batch path at 4 shards must
  reach >= 1.5x its own shards=1 items/sec on hosts with >= 2 CPUs.

The committed baseline gates only the *sequential* reference paths (the
stable, machine-comparable series); the shmem throughputs and the 4-vs-1
scaling ratios ride along in ``extras``/``checks``, where the in-run
assertion — not a cross-machine diff — enforces the speedup.
"""

import os

from repro.eval import experiments as ex
from repro.eval.experiments import _shard_path_key

#: CI smoke runs set these to shrink the measured slice.
MAX_ITEMS = int(os.environ.get("REPRO_BENCH_SHMEM_ITEMS", "192"))
SHARD_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_SHMEM_SHARDS", "1,4").split(",")
)
#: Shared runners schedule noisily; CI may lower the floor a notch
#: without giving up the lost-win signal.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SHMEM_MIN_SPEEDUP", "1.5"))


def test_shmem_fanout(bench_run, efficiency_datasets, save_result):
    result, seconds = bench_run(
        lambda: ex.run_sharded_throughput(
            efficiency_datasets["YTube"],
            shard_counts=SHARD_COUNTS,
            k=30,
            max_items=MAX_ITEMS,
            backends=("sequential", "shmem"),
        )
    )
    low, high = min(SHARD_COUNTS), max(SHARD_COUNTS)

    # Gated metrics: the sequential reference series only.  The shmem
    # series depends on the host's core count, so it is recorded as
    # extras (visible in artifacts/diffs, never a cross-machine gate).
    metrics = {"driver": {"seconds": seconds}}
    extras = {}
    ratios = {}
    for mode in ("scan", "index"):
        for serve in ("item", "batch"):
            sequential = result.items_per_sec[_shard_path_key(mode, serve, "sequential")]
            shmem = result.items_per_sec[_shard_path_key(mode, serve, "shmem")]
            for n, ips in sequential.items():
                metrics[f"sharded-{mode}-{serve}[shards={n}]"] = {"items_per_sec": ips}
            extras[f"sharded-{mode}-{serve}@shmem"] = {
                str(n): ips for n, ips in shmem.items()
            }
            ratios[f"{mode}-{serve}"] = shmem[high] / shmem[low]
    checks = {
        "parity_ok": result.parity_ok,
        "shmem_index_batch_scaling": ratios["index-batch"],
    }
    save_result(
        "shmem_fanout",
        result.to_text(),
        metrics=metrics,
        checks=checks,
        extras={"shmem_items_per_sec": extras, "shmem_scaling_ratios": ratios},
    )

    # The tentpole claim: the segment codec and the batched-window fan-out
    # are bit-transparent at every swept (shard count, backend).
    assert result.parity_ok
    # And the scaling claim: with real cores underneath, 4 zero-copy
    # workers beat 1 on the Python-heavy index-batch path.  Single-core
    # hosts serialize the workers, so the ratio is only asserted where
    # the hardware can express it.
    if high >= 4 and low <= 1 and (os.cpu_count() or 1) >= 2:
        assert ratios["index-batch"] >= MIN_SPEEDUP, (
            f"shmem index-batch at {high} shards reached only "
            f"{ratios['index-batch']:.2f}x its shards={low} throughput"
        )
