"""Fig. 11: efficiency of media updates over the CPPse-index.

Seconds spent in Algorithm 2 while absorbing 1..4 test partitions of
profile updates, per dataset.  Expected shape: "the cost increases steadily
with the update size increase" — roughly linear growth, no blow-up.
"""

from repro.eval import experiments as ex


def test_fig11_maintenance_cost(bench_run, datasets, save_result):
    result, seconds = bench_run(lambda: ex.run_fig11(datasets, sizes=(1, 2, 3, 4)))
    metrics = {"driver": {"seconds": seconds}}
    for name, series in result.seconds.items():
        metrics[f"maintenance[{name}]"] = {"seconds": series[4]}
    save_result(
        "fig11",
        result.to_text(),
        metrics=metrics,
        extras={
            "maintenance_seconds": {
                name: {str(n): v for n, v in series.items()}
                for name, series in result.seconds.items()
            }
        },
    )
    for name, series in result.seconds.items():
        costs = [series[n] for n in (1, 2, 3, 4)]
        assert all(c > 0 for c in costs), name
        # Steady growth: absorbing more partitions costs more.
        assert costs[3] > costs[0], name
