"""Fig. 9: effect of user profile updates — ssRec vs ssRec-nu.

P@k of the stream setting (profiles updated from each previous partition)
against the static setting (training-time profiles frozen).  Expected shape:
"with user profile updates, we obtain a big effectiveness gain on P@k".
"""

import pytest

from conftest import MIN_TRUTH
from repro.eval import experiments as ex

KS = (5, 10, 20, 30)


@pytest.mark.parametrize("name", ["YTube", "SynYTube", "MLens", "SynMLens"])
def test_fig9_profile_updates(bench_run, datasets, save_result, name):
    result, seconds = bench_run(
        lambda: ex.run_fig9(datasets[name], ks=KS, min_truth=MIN_TRUTH)
    )
    p = result.precision
    save_result(
        f"fig9_{name.lower()}",
        result.to_text(),
        metrics={"driver": {"seconds": seconds}},
        extras={
            "p_at_k": {
                method: {str(k): v for k, v in series.items()}
                for method, series in p.items()
            }
        },
    )
    wins = sum(1 for k in KS if p["ssRec"][k] >= p["ssRec-nu"][k])
    assert wins >= 3
