"""Table III: overview of the four datasets.

Regenerates the dataset-statistics table (|Up|, |Uc|, |E|, C, |IRact|, |V|)
for YTube, SynYTube, MLens and SynMLens.  Expected shape: each synthetic set
matches its source's universes with a slightly different interaction count
(the paper's SynYTube has ~6% more interactions than YTube).
"""

from repro.eval import experiments as ex


def test_table3_dataset_overview(bench_run, datasets, save_result):
    result, seconds = bench_run(lambda: ex.run_table3(datasets))
    save_result(
        "table3",
        result.to_text(),
        metrics={"driver": {"seconds": seconds}},
        extras={"rows": result.rows_},
    )
    rows = {row["Dataset"]: row for row in result.rows_}
    for source, synth in (("YTube", "SynYTube"), ("MLens", "SynMLens")):
        assert rows[synth]["|Up|"] == rows[source]["|Up|"]
        assert rows[synth]["|Uc|"] == rows[source]["|Uc|"]
        assert rows[synth]["C"] == rows[source]["C"]
        assert rows[synth]["|V|"] == rows[source]["|V|"]
        ratio = rows[synth]["|IRact|"] / rows[source]["|IRact|"]
        assert 0.9 <= ratio <= 1.2
