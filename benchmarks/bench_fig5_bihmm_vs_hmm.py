"""Fig. 5: BiHMM vs single-layer HMM prediction accuracy, all 4 datasets.

For each dataset, users are grouped by their per-user optimal HMM hidden-
state count and the mean next-category prediction accuracy of both models is
reported per group.  Expected shape: BiHMM >= HMM in (almost) every group —
"the BiHMM is better than the HMM ... consumers' interests are dependent on
the producers as well".
"""

import pytest

from repro.eval import experiments as ex


@pytest.mark.parametrize("name", ["YTube", "SynYTube", "MLens", "SynMLens"])
def test_fig5_bihmm_vs_hmm(bench_run, datasets, save_result, name):
    result, seconds = bench_run(
        lambda: ex.run_fig5(
            datasets[name], max_users=16, max_states=4, min_history=25
        )
    )
    weights = result.users_by_group
    total = sum(weights.values())
    hmm_mean = sum(result.hmm_by_group[g] * weights[g] for g in weights) / total
    bihmm_mean = sum(result.bihmm_by_group[g] * weights[g] for g in weights) / total
    save_result(
        f"fig5_{name.lower()}",
        result.to_text(),
        metrics={"driver": {"seconds": seconds}},
        checks={"hmm_mean": hmm_mean, "bihmm_mean": bihmm_mean},
        extras={
            "hmm_by_group": {str(g): v for g, v in result.hmm_by_group.items()},
            "bihmm_by_group": {str(g): v for g, v in result.bihmm_by_group.items()},
        },
    )
    # Weighted-average shape claim, with a small noise allowance.
    assert bihmm_mean >= hmm_mean - 0.02
