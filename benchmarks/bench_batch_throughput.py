"""Batched serving throughput: ``recommend_batch`` vs the per-item loop.

Beyond the paper's figures: measures items/sec of the micro-batched serving
path against per-item ``recommend`` in three scenarios — scan mode, index
mode (pure serving) and index mode with interleaved profile updates (where
batching also amortizes the Algorithm 2 maintenance flushes).  Expected
shape: scan-mode batching wins big (one profile sync and one smoothed
column per symbol per window instead of per item); pure index serving
gains moderately from shared tree location and query encodings; index
with updates stays near flat — maintenance cost is per-user work
(signature refresh + ancestor re-aggregation) that batching reorders but
cannot remove.
"""

import os

from repro.eval import experiments as ex

#: CI smoke runs set this to shrink the measured slice.
MAX_ITEMS = int(os.environ.get("REPRO_BENCH_BATCH_ITEMS", "512"))

BATCH_SIZES = (1, 16, 64)


def test_batch_throughput(bench_run, efficiency_datasets, save_result):
    result, seconds = bench_run(
        lambda: ex.run_batch_throughput(
            efficiency_datasets["YTube"],
            batch_sizes=BATCH_SIZES,
            k=30,
            max_items=MAX_ITEMS,
        )
    )
    metrics = {"driver": {"seconds": seconds}}
    for scenario, series in result.items_per_sec.items():
        for batch_size, ips in series.items():
            metrics[f"{scenario}[batch={batch_size}]"] = {"items_per_sec": ips}
    checks = {
        "scan_speedup_at_64": result.speedup("scan", 64),
        "index_speedup_at_64": result.speedup("index", 64),
    }
    save_result("batch_throughput", result.to_text(), metrics=metrics, checks=checks)
    # The tentpole claim: micro-batching at 64 at least doubles scan-mode
    # serving throughput over the per-item loop.
    assert checks["scan_speedup_at_64"] >= 2.0
    # Index serving gains from shared tree location/query encodings.  The
    # index+updates row is reported but not asserted: Algorithm 2's
    # per-user work dominates either cadence, and with few windows a
    # single block-rebuild spike inside one timed flush swamps the ratio.
    assert checks["index_speedup_at_64"] > 0.9
