"""Batched serving throughput: ``recommend_batch`` vs the per-item loop.

Beyond the paper's figures: measures items/sec of the micro-batched serving
path against per-item ``recommend`` in three scenarios — scan mode, index
mode (pure serving) and index mode with interleaved profile updates (where
batching also amortizes the Algorithm 2 maintenance flushes).  Expected
shape: scan-mode batching wins big (one profile sync and one smoothed
column per symbol per window instead of per item); pure index serving
gains moderately from shared tree location and query encodings; index
with updates stays near flat — maintenance cost is per-user work
(signature refresh + ancestor re-aggregation) that batching reorders but
cannot remove.
"""

import os

import pytest

from repro.eval import experiments as ex

#: CI smoke runs set this to shrink the measured slice.
MAX_ITEMS = int(os.environ.get("REPRO_BENCH_BATCH_ITEMS", "512"))


def test_batch_throughput(benchmark, efficiency_datasets, save_result):
    result = benchmark.pedantic(
        lambda: ex.run_batch_throughput(
            efficiency_datasets["YTube"],
            batch_sizes=(1, 16, 64),
            k=30,
            max_items=MAX_ITEMS,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("batch_throughput", result.to_text())
    # The tentpole claim: micro-batching at 64 at least doubles scan-mode
    # serving throughput over the per-item loop.
    assert result.speedup("scan", 64) >= 2.0
    # Index serving gains from shared tree location/query encodings.  The
    # index+updates row is reported but not asserted: Algorithm 2's
    # per-user work dominates either cadence, and with few windows a
    # single block-rebuild spike inside one timed flush swamps the ratio.
    assert result.speedup("index", 64) > 0.9
