"""Differential conformance of every serving path (the repro.sim harness).

Replays the adversarial scenario catalog — bursts, cold starts, drift,
popularity skew, duplicate/out-of-order delivery, maintenance-boundary
storms — through the per-item scan, batched scan, CPPse-index and sharded
serving paths (one mid-stream snapshot reload on the sharded index path,
one rolling worker restart on the process-backend path) and judges every
window against the naive per-pair oracle.

Two assertions, both regression backstops for serving-path work:

- **zero divergences** across the whole scenario x path matrix — any
  future optimization that moves a single result breaks this bench;
- the report also carries per-path throughput, persisted to
  ``benchmarks/results/conformance.txt`` for eyeballing which path pays
  what under adversarial traffic.
"""

import os

from repro.eval import experiments as ex

#: CI smoke runs set these to shrink the replayed stream / catalog.
MAX_EVENTS = int(os.environ.get("REPRO_BENCH_CONFORMANCE_EVENTS", "500"))
_names = os.environ.get("REPRO_BENCH_CONFORMANCE_SCENARIOS", "")
SCENARIOS = tuple(name for name in _names.split(",") if name) or None


def test_conformance(bench_run, bench_seed, save_result):
    result, seconds = bench_run(
        lambda: ex.run_conformance(
            scenarios=SCENARIOS,
            seed=bench_seed,
            max_events=MAX_EVENTS,
        )
    )
    # Aggregate per-path throughput across scenarios for the artifact.
    queries: dict[str, int] = {}
    serve_seconds: dict[str, float] = {}
    for report in result.reports:
        for name, path_report in report.paths.items():
            queries[name] = queries.get(name, 0) + path_report.n_queries
            serve_seconds[name] = (
                serve_seconds.get(name, 0.0) + path_report.serve_seconds
            )
    metrics = {"driver": {"seconds": seconds}}
    for name in queries:
        if serve_seconds[name] > 0:
            metrics[name] = {"items_per_sec": queries[name] / serve_seconds[name]}
    checks = {
        "conformant": result.conformant,
        "total_divergences": result.total_divergences,
        "n_scenarios": len(result.reports),
    }
    save_result("conformance", result.to_text(), metrics=metrics, checks=checks)
    # The tentpole claim: every serving path agrees with the oracle on
    # every window of every adversarial scenario.
    assert result.conformant, result.to_text()
    # Each replayed scenario actually exercised the full path matrix —
    # the registry-derived catalog (cached variants included), the
    # process backend with its mid-stream worker restart, and the
    # sharded index path with its mid-stream snapshot reload.
    from repro.sim import CONFORMANCE_PATHS

    for report in result.reports:
        assert set(report.paths) == set(CONFORMANCE_PATHS)
        assert any(name.endswith("-cached") for name in report.paths)
        assert report.paths["sharded-index-block"].snapshot_reloads >= 1
        assert report.paths["sharded-scan-process"].worker_restarts >= 1
