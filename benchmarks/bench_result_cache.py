"""Plan-level result cache vs its uncached anchor on duplicate-heavy traffic.

Replays the ``duplicate_out_of_order`` scenario — 25% duplicated
interactions plus geometric at-least-once upload redelivery — through two
replicas of one trained scan-mode recommender: the uncached ``scan-item``
anchor and the ``scan-item-cached`` execution plan.  Every cached ranked
list is compared to the anchor's bitwise *while being timed*, so the
measured win is proven exact (the conformance suite additionally holds
the ``*-cached`` plans to zero divergences across the whole scenario
catalog).

Assertions:

- **parity** — cached serving is bit-identical to the uncached anchor on
  every served item;
- **hit rate** — redelivered items actually hit (the scenario is built
  to produce them);
- **speedup** — cached serving clears >=1.3x items/sec over the anchor.
"""

import os

from conftest import SCALE
from repro.eval import experiments as ex

#: CI smoke runs set this to shrink the replayed stream.
MAX_EVENTS = int(os.environ.get("REPRO_BENCH_CACHE_EVENTS", "4800"))

#: The >=1.3x headline claim of the cached plans (duplicate-heavy
#: delivery at default scale; scales below keep the same bar).
MIN_SPEEDUP = 1.3


def test_result_cache(bench_run, bench_seed, save_result, efficiency_datasets):
    result, seconds = bench_run(
        lambda: ex.run_result_cache(
            base=efficiency_datasets["YTube"],
            seed=bench_seed,
            max_events=MAX_EVENTS,
        )
    )
    metrics = {
        "driver": {"seconds": seconds},
        "uncached": {
            "items_per_sec": result.uncached_items_per_sec,
            "seconds": result.uncached_seconds,
        },
        "cached": {
            "items_per_sec": result.cached_items_per_sec,
            "seconds": result.cached_seconds,
        },
    }
    checks = {
        "parity_ok": result.parity_ok,
        "cache_speedup": result.speedup,
        "hit_rate": result.hit_rate,
        "n_served": result.n_served,
    }
    extras = {"cache_stats": result.cache_stats, "scale": SCALE}
    save_result("result_cache", result.to_text(), metrics=metrics, checks=checks,
                extras=extras)
    # The cache is exact or it is nothing: every ranked list served from
    # it matched the uncached anchor bit for bit.
    assert result.parity_ok, result.to_text()
    # The scenario must actually produce redelivery hits to measure.
    assert result.cache_stats.get("hits", 0) > 0, result.to_text()
    assert result.hit_rate >= 0.25, result.to_text()
    # The headline: >=1.3x items/sec over the uncached anchor.
    assert result.speedup >= MIN_SPEEDUP, result.to_text()
