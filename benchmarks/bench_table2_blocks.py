"""Table II: signature-size factors vs user-block count.

Regenerates the paper's Table II rows (max entity / producer universe per
signature entry at 1..50 user blocks) on the paper-sparsity YTube variant.
Expected shape: both rows fall sharply as the block count grows, then
flatten — "applying user blocking reduces the entry size in a tree by
large".
"""

from repro.eval import experiments as ex


def test_table2_signature_size_factors(bench_run, sparse_ytube, save_result):
    result, seconds = bench_run(
        lambda: ex.run_table2(sparse_ytube, block_counts=(1, 10, 20, 30, 40, 50))
    )
    save_result(
        "table2",
        result.to_text(),
        metrics={"driver": {"seconds": seconds}},
        extras={
            "block_counts": list(result.block_counts),
            "max_entities": list(result.max_entities),
            "max_producers": list(result.max_producers),
        },
    )
    # Shape assertions: monotone-ish decrease from no-blocking to 50 blocks.
    assert result.max_entities[0] > result.max_entities[-1]
    assert result.max_entities[0] > 2 * result.max_entities[-1]
    assert result.max_producers[0] >= result.max_producers[-1]
