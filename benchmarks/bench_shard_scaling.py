"""Shard-count scaling of the sharded serving runtime (repro.serve).

Sweeps ``ShardedRecommender`` over shard counts in both scan and index
mode and checks two things the subsystem promises:

- **Parity**: every swept shard count returns results identical to the
  single recommender in the same mode (the block-aware plan shares the
  global CPPse blocking across shards, so even index-mode probed-tree
  sets match exactly).
- **A measured win over the unsharded scan path**: the sharded runtime's
  micro-batched scan fan-out must beat the per-item sequential scan —
  batching amortization survives partitioning.

Expected shape: scan-mode fan-out costs grow with shard count (N small
NumPy passes instead of one big one), so the win is largest at low shard
counts; index-mode throughput is roughly flat because the per-shard
best-first searches add up to the same candidate work.  The value of
higher shard counts is the smaller per-shard population each worker
holds — the memory/ownership axis, not single-process speed.
"""

import os

from repro.eval import experiments as ex

#: CI smoke runs set these to shrink the measured slice.
MAX_ITEMS = int(os.environ.get("REPRO_BENCH_SHARD_ITEMS", "256"))
SHARD_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_SHARD_COUNTS", "1,2,4").split(",")
)


def test_shard_scaling(benchmark, efficiency_datasets, save_result):
    result = benchmark.pedantic(
        lambda: ex.run_sharded_throughput(
            efficiency_datasets["YTube"],
            shard_counts=SHARD_COUNTS,
            k=30,
            max_items=MAX_ITEMS,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("shard_scaling", result.to_text())
    # The tentpole claim: sharded results are bit-identical to the single
    # recommender at every swept shard count, scan and index mode alike.
    assert result.parity_ok
    # And the runtime still wins over the unsharded per-item scan path:
    # micro-batched fan-out keeps the batching amortization.
    best = max(result.speedup_over_scan(n) for n in SHARD_COUNTS)
    assert best >= 1.5
