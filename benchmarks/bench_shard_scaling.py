"""Shard-count and backend scaling of the sharded serving runtime.

Sweeps ``ShardedRecommender`` over shard counts in both scan and index
mode, across the sequential, thread and process fan-out backends, and
checks three things the subsystem promises:

- **Parity**: every swept (shard count, backend) returns results
  identical to the single recommender in the same mode — the top-k output
  is bit-identical across sequential/thread/process fan-out (the block-
  aware plan shares the global CPPse blocking across shards, so even
  index-mode probed-tree sets match exactly).
- **A measured win over the unsharded scan path**: the sharded runtime's
  micro-batched scan fan-out must beat the per-item sequential scan —
  batching amortization survives partitioning.
- **Process-backend parallelism** (multi-core hosts): with one OS worker
  per shard, the best process-backend path must reach >= 2.5x the
  sequential fan-out's items/sec at 4+ shards — the GIL-free scaling the
  thread backend cannot deliver.

Expected shape: sequential/thread fan-out costs grow with shard count (N
small GIL-bound passes instead of one big one), so their win concentrates
at low shard counts; the process backend pays a per-request IPC toll but
runs shards truly concurrently, so its advantage *grows* with shard count
and with per-shard work (index mode's Python-heavy search parallelizes
best).  The artifact records every (path, shard count) throughput plus
the sequential index path's latency percentiles.
"""

import os

from repro.eval import experiments as ex

#: CI smoke runs set these to shrink the measured slice.
MAX_ITEMS = int(os.environ.get("REPRO_BENCH_SHARD_ITEMS", "256"))
SHARD_COUNTS = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_SHARD_COUNTS", "1,2,4").split(",")
)
BACKENDS = tuple(
    b
    for b in os.environ.get(
        "REPRO_BENCH_SHARD_BACKENDS", "sequential,thread,process"
    ).split(",")
    if b
)


def test_shard_scaling(bench_run, efficiency_datasets, save_result):
    result, seconds = bench_run(
        lambda: ex.run_sharded_throughput(
            efficiency_datasets["YTube"],
            shard_counts=SHARD_COUNTS,
            k=30,
            max_items=MAX_ITEMS,
            backends=BACKENDS,
        )
    )
    max_n = max(SHARD_COUNTS)
    metrics = {"driver": {"seconds": seconds}}
    for name, ips in result.baselines.items():
        metrics[f"unsharded-{name}"] = {"items_per_sec": ips}
    for path, series in result.items_per_sec.items():
        for n, ips in series.items():
            metrics[f"{path}[shards={n}]"] = {"items_per_sec": ips}
    # Latency percentiles belong to the first swept backend's index-item
    # path (that is what run_sharded_throughput records them for).
    latency_path = "sharded-index-item" + (
        "" if BACKENDS[0] == "sequential" else f"@{BACKENDS[0]}"
    )
    for n, summary in result.latency_ms.items():
        metrics[f"{latency_path}[shards={n}]"]["latency_ms"] = summary
    checks = {"parity_ok": result.parity_ok}
    # The speedup-over-scan ratio is defined on the sequential fan-out;
    # sweeps that exclude it (REPRO_BENCH_SHARD_BACKENDS) skip the ratio
    # checks but keep the parity assertion.
    if "sequential" in BACKENDS:
        checks["best_speedup_over_scan"] = max(
            result.speedup_over_scan(n) for n in SHARD_COUNTS
        )
    process_measured = "process" in BACKENDS and "sequential" in BACKENDS
    if process_measured:
        checks["process_backend_speedup"] = result.best_backend_speedup(max_n)
    save_result("shard_scaling", result.to_text(), metrics=metrics, checks=checks)

    # The tentpole claim: sharded results are bit-identical to the single
    # recommender at every swept (shard count, backend), scan and index
    # mode alike — including the pickle trip into worker processes.
    assert result.parity_ok
    # And the runtime still wins over the unsharded per-item scan path:
    # micro-batched fan-out keeps the batching amortization.
    if "sequential" in BACKENDS:
        assert checks["best_speedup_over_scan"] >= 1.5
    # Process-backend parallelism: real cores, real speedup.  Only
    # meaningful where the host actually has cores to scale onto — CI
    # runners do; single-core containers serialize the workers.
    if process_measured and max_n >= 4 and (os.cpu_count() or 1) >= 4:
        assert checks["process_backend_speedup"] >= 2.5, (
            f"process backend reached only "
            f"{checks['process_backend_speedup']:.2f}x sequential at "
            f"{max_n} shards"
        )
