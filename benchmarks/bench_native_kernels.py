"""Fused native scoring kernels vs the vectorized scan-batch path.

Serves one trained scan-mode recommender's test slice through
``recommend_batch`` twice — the vectorized ``scan-batch`` plan and a
replica switched to ``scoring="native"`` (the ``scan-batch-native``
plan) — and compares items/sec.  Both arms run a full untimed warm-up
pass first, so numba JIT compilation is excluded from the timed region
by construction (the rule docs/BENCHMARKS.md states); every native
ranked list is judged against the vectorized arm's within the 1e-9 tie
discipline *while being timed*, so the measured win is proven correct
(the conformance suite additionally holds the ``*-native`` plans to
zero divergences across the whole scenario catalog).

Assertions:

- **parity** — native serving matches the vectorized arm within ties on
  every served item (bitwise when the kernels are unavailable and the
  native arm runs its fallback);
- **speedup** — with numba present (``native_engaged``), the fused
  kernels clear >= 5x items/sec over the vectorized scan-batch path
  (the order-of-magnitude headline's gate).  Without numba the two arms
  tie through the fallback and the headline is not claimed — the run
  still gates parity and records ``native_engaged: false``.
"""

import os

from conftest import SCALE
from repro.eval import experiments as ex

#: CI smoke runs set this to shrink the served slice.
MAX_ITEMS = int(os.environ.get("REPRO_BENCH_NATIVE_ITEMS", "512"))

#: The >=5x headline of the fused kernels on the scan-batch path
#: (acceptance target is order-of-magnitude; the gate keeps slack for
#: shared CI runners).
MIN_SPEEDUP = 5.0


def test_native_kernels(bench_run, bench_seed, save_result, efficiency_datasets):
    result, seconds = bench_run(
        lambda: ex.run_native_kernels(
            dataset=efficiency_datasets["YTube"],
            seed=bench_seed,
            max_items=MAX_ITEMS,
        )
    )
    metrics = {
        "driver": {"seconds": seconds},
        "vectorized-scan-batch": {
            "items_per_sec": result.vectorized_items_per_sec,
            "seconds": result.vectorized_seconds,
        },
        "native-scan-batch": {
            "items_per_sec": result.native_items_per_sec,
            "seconds": result.native_seconds,
        },
    }
    checks = {
        "parity_ok": result.parity_ok,
        "native_engaged": result.native_engaged,
        "native_speedup": result.speedup,
        "fallbacks": result.fallbacks,
        "n_items": result.n_items,
    }
    save_result("native_kernels", result.to_text(), metrics=metrics, checks=checks,
                extras={"scale": SCALE})
    # Exactness first: native serving is within the 1e-9 tie discipline
    # of the vectorized arm (bit-identical when falling back).
    assert result.parity_ok, result.to_text()
    if result.native_engaged:
        # The headline only exists where the compiled kernels do.
        assert result.speedup >= MIN_SPEEDUP, result.to_text()
